//! Integration tests: every baseline run under the simulator, checked
//! against the §2.2 properties and its Figure 1 latency degree.

use std::time::Duration;
use wamcast_baselines::{
    fritzke_multicast, DeterministicMerge, OptimisticBroadcast, RingMulticast, RodriguesMulticast,
    SequencerBroadcast, SkeenMulticast,
};
use wamcast_sim::{invariants, SimConfig, Simulation};
use wamcast_types::{
    GroupId, GroupSet, MessageId, Payload, ProcessId, Protocol, SimTime, Topology,
};

fn check_ordering<P: Protocol>(sim: &Simulation<P>) {
    let correct = sim.alive_processes();
    invariants::check_all(sim.topology(), sim.metrics(), &correct).assert_ok();
}

/// Casts one message to `dest` at t=0 from p0 and returns (degree, sim).
fn one_shot<P: Protocol>(
    k: usize,
    d: usize,
    dest: GroupSet,
    factory: impl FnMut(ProcessId, &Topology) -> P,
) -> (u64, Simulation<P>) {
    let cfg = SimConfig::default().with_seed(99);
    let mut sim = Simulation::new(Topology::symmetric(k, d), cfg, factory);
    let id = sim.cast_at(SimTime::ZERO, ProcessId(0), dest, Payload::new());
    let ok = sim.run_until_delivered(&[id], SimTime::from_millis(600_000));
    assert!(ok, "message not delivered");
    let deg = sim.metrics().latency_degree(id).expect("delivered");
    (deg, sim)
}

// ---------------------------------------------------------------- Skeen

#[test]
fn skeen_two_groups_degree_two() {
    let dest = GroupSet::first_n(2);
    let (deg, mut sim) = one_shot(2, 3, dest, |p, _| SkeenMulticast::new(p));
    assert_eq!(
        deg, 2,
        "Skeen is latency-degree optimal (paper §1 corollary)"
    );
    sim.run_to_quiescence();
    check_ordering(&sim);
    invariants::check_genuineness(sim.topology(), sim.metrics()).assert_ok();
}

#[test]
fn skeen_orders_concurrent_multicasts() {
    let cfg = SimConfig::default().with_seed(5);
    let mut sim = Simulation::new(Topology::symmetric(3, 2), cfg, |p, _| {
        SkeenMulticast::new(p)
    });
    let g01 = GroupSet::from_iter([GroupId(0), GroupId(1)]);
    let g12 = GroupSet::from_iter([GroupId(1), GroupId(2)]);
    let mut ids = Vec::new();
    for i in 0..10u64 {
        let dest = if i % 2 == 0 { g01 } else { g12 };
        ids.push(sim.cast_at(
            SimTime::from_millis(i * 3),
            ProcessId((i % 6) as u32),
            dest,
            Payload::new(),
        ));
    }
    assert!(sim.run_until_delivered(&ids, SimTime::from_millis(600_000)));
    sim.run_to_quiescence();
    check_ordering(&sim);
}

#[test]
fn skeen_blocks_on_crash() {
    // Skeen is failure-free by design: a crashed destination process means
    // its proposal never arrives and nothing addressed to it delivers.
    let cfg = SimConfig::default().with_seed(6);
    let mut sim = Simulation::new(Topology::symmetric(2, 2), cfg, |p, _| {
        SkeenMulticast::new(p)
    });
    sim.crash_at(SimTime::ZERO, ProcessId(3));
    let id = sim.cast_at(
        SimTime::from_millis(1),
        ProcessId(0),
        GroupSet::first_n(2),
        Payload::new(),
    );
    let ok = sim.run_until_delivered(&[id], SimTime::from_millis(60_000));
    assert!(!ok, "Skeen should block when a destination crashed");
}

// -------------------------------------------------------------- Fritzke

#[test]
fn fritzke_two_groups_degree_two() {
    let dest = GroupSet::first_n(2);
    let (deg, mut sim) = one_shot(2, 3, dest, fritzke_multicast);
    assert_eq!(deg, 2, "Figure 1a row [5]");
    sim.run_to_quiescence();
    check_ordering(&sim);
    invariants::check_genuineness(sim.topology(), sim.metrics()).assert_ok();
}

// ------------------------------------------------------------------ Ring

#[test]
fn ring_latency_grows_with_group_count() {
    // Figure 1a row [4]: latency degree k+1 — one hop to the first
    // destination group, k−1 hand-offs, one final fan-out. The paper's
    // accounting places the caster in one of the k groups; the full k+1
    // shows when the caster is not in the *first* group (otherwise the
    // initial hop is free and the degree is k; tested separately below).
    for k in [2usize, 3, 4] {
        let d = 2;
        let dest = GroupSet::first_n(k);
        let cfg = SimConfig::default().with_seed(99);
        let mut sim = Simulation::new(Topology::symmetric(k, d), cfg, RingMulticast::new);
        // Caster in the last destination group.
        let caster = ProcessId(((k - 1) * d) as u32);
        let id = sim.cast_at(SimTime::ZERO, caster, dest, Payload::new());
        assert!(sim.run_until_delivered(&[id], SimTime::from_millis(600_000)));
        let deg = sim.metrics().latency_degree(id).unwrap();
        assert_eq!(deg as usize, k + 1, "ring multicast to {k} groups");
        sim.run_to_quiescence();
        check_ordering(&sim);
        invariants::check_genuineness(sim.topology(), sim.metrics()).assert_ok();
    }
}

#[test]
fn ring_caster_in_first_group_saves_one_hop() {
    let dest = GroupSet::first_n(3);
    let (deg, mut sim) = one_shot(3, 2, dest, RingMulticast::new);
    assert_eq!(deg, 3, "caster in g0: k hops instead of k+1");
    sim.run_to_quiescence();
    check_ordering(&sim);
}

#[test]
fn ring_single_group_fast() {
    let dest = GroupSet::singleton(GroupId(0));
    let (deg, mut sim) = one_shot(2, 2, dest, RingMulticast::new);
    assert_eq!(deg, 0, "caster in the only destination group");
    sim.run_to_quiescence();
    check_ordering(&sim);
}

#[test]
fn ring_orders_overlapping_multicasts() {
    let cfg = SimConfig::default().with_seed(7);
    let mut sim = Simulation::new(Topology::symmetric(3, 2), cfg, RingMulticast::new);
    let g01 = GroupSet::from_iter([GroupId(0), GroupId(1)]);
    let g12 = GroupSet::from_iter([GroupId(1), GroupId(2)]);
    let g02 = GroupSet::from_iter([GroupId(0), GroupId(2)]);
    let mut ids = Vec::new();
    for i in 0..9u64 {
        let dest = [g01, g12, g02][(i % 3) as usize];
        ids.push(sim.cast_at(
            SimTime::from_millis(i * 5),
            ProcessId((i % 6) as u32),
            dest,
            Payload::new(),
        ));
    }
    assert!(
        sim.run_until_delivered(&ids, SimTime::from_millis(600_000)),
        "ring multicasts not all delivered"
    );
    sim.run_to_quiescence();
    check_ordering(&sim);
}

#[test]
fn ring_tolerates_member_crash() {
    let cfg = SimConfig::default().with_seed(8);
    let mut sim = Simulation::new(Topology::symmetric(2, 3), cfg, RingMulticast::new);
    // Crash a non-coordinator member of the first group mid-run.
    sim.crash_at(SimTime::from_millis(50), ProcessId(1));
    let id = sim.cast_at(
        SimTime::from_millis(60),
        ProcessId(0),
        GroupSet::first_n(2),
        Payload::new(),
    );
    assert!(sim.run_until_delivered(&[id], SimTime::from_millis(600_000)));
    check_ordering(&sim);
}

// ------------------------------------------------------------- Rodrigues

#[test]
fn rodrigues_two_groups_degree_four() {
    let dest = GroupSet::first_n(2);
    let (deg, mut sim) = one_shot(2, 3, dest, |p, _| RodriguesMulticast::new(p));
    assert_eq!(deg, 4, "Figure 1a row [10]");
    sim.run_to_quiescence();
    check_ordering(&sim);
    invariants::check_genuineness(sim.topology(), sim.metrics()).assert_ok();
}

#[test]
fn rodrigues_orders_concurrent_multicasts() {
    let cfg = SimConfig::default().with_seed(9);
    let mut sim = Simulation::new(Topology::symmetric(2, 2), cfg, |p, _| {
        RodriguesMulticast::new(p)
    });
    let dest = GroupSet::first_n(2);
    let mut ids = Vec::new();
    for i in 0..8u64 {
        ids.push(sim.cast_at(
            SimTime::from_millis(i * 4),
            ProcessId((i % 4) as u32),
            dest,
            Payload::new(),
        ));
    }
    assert!(sim.run_until_delivered(&ids, SimTime::from_millis(600_000)));
    sim.run_to_quiescence();
    check_ordering(&sim);
}

// ------------------------------------------------------------ Optimistic

#[test]
fn optimistic_final_degree_two_and_tentative_order() {
    // Cast from a non-sequencer process in another group, so the final
    // delivery takes dissemination (1) + sequencer fan-out (2). A cast by
    // the sequencer itself would collapse the two (degree 1).
    let cfg = SimConfig::default().with_seed(99);
    let mut sim = Simulation::new(Topology::symmetric(2, 3), cfg, |p, _| {
        OptimisticBroadcast::new(p, Duration::from_millis(5))
    });
    let dest = GroupSet::first_n(2);
    let id = sim.cast_at(SimTime::ZERO, ProcessId(3), dest, Payload::new());
    assert!(sim.run_until_delivered(&[id], SimTime::from_millis(600_000)));
    assert_eq!(
        sim.metrics().latency_degree(id),
        Some(2),
        "Figure 1b row [12]: final delivery"
    );
    sim.run_until(SimTime::from_millis(10_000));
    check_ordering(&sim);
    // The optimistic delivery happened at every process too.
    for p in sim.topology().processes() {
        assert_eq!(sim.protocol(p).optimistic_order().len(), 1, "{p}");
    }
}

#[test]
fn optimistic_total_order_across_senders() {
    let cfg = SimConfig::default().with_seed(10);
    let mut sim = Simulation::new(Topology::symmetric(2, 2), cfg, |p, _| {
        OptimisticBroadcast::new(p, Duration::from_millis(50))
    });
    let dest = GroupSet::first_n(2);
    let mut ids = Vec::new();
    for i in 0..10u64 {
        ids.push(sim.cast_at(
            SimTime::from_millis(i * 7),
            ProcessId((i % 4) as u32),
            dest,
            Payload::new(),
        ));
    }
    assert!(sim.run_until_delivered(&ids, SimTime::from_millis(600_000)));
    sim.run_until(SimTime::from_millis(700_000));
    check_ordering(&sim);
    // All processes converge on the sequencer's order.
    let reference: Vec<MessageId> = sim.metrics().delivered_seq[0].clone();
    for p in sim.topology().processes() {
        assert_eq!(sim.metrics().delivered_seq[p.index()], reference);
    }
}

// ------------------------------------------------------------- Sequencer

#[test]
fn sequencer_degree_two_uniform() {
    let dest = GroupSet::first_n(2);
    let (deg, mut sim) = one_shot(2, 3, dest, |p, _| SequencerBroadcast::new(p));
    assert_eq!(deg, 2, "Figure 1b row [13]");
    sim.run_to_quiescence();
    check_ordering(&sim);
}

#[test]
fn sequencer_message_complexity_is_quadratic() {
    // O(n²) inter-group messages (the votes dominate).
    let dest = GroupSet::first_n(2);
    let (_, sim_small) = one_shot(2, 2, dest, |p, _| SequencerBroadcast::new(p));
    let (_, sim_large) = one_shot(2, 4, dest, |p, _| SequencerBroadcast::new(p));
    let small = sim_small.metrics().inter_sends;
    let large = sim_large.metrics().inter_sends;
    // n doubled (4 -> 8): inter-group messages should grow ~4x.
    assert!(
        large >= 3 * small,
        "expected quadratic growth: {small} -> {large}"
    );
}

// -------------------------------------------------------------- Detmerge

#[test]
fn detmerge_broadcast_degree_one() {
    // Figure 1b row [1]: latency degree 1, under its stronger model
    // (streams + synchronized clocks). Heartbeat period far above the
    // inter-group delay keeps unrelated nulls from inflating stamps.
    let cfg = SimConfig::default().with_seed(11);
    // Stagger the caster's heartbeat phase so none of its own heartbeats
    // falls between the cast and the delivery (see DeterministicMerge docs).
    let mut sim = Simulation::new(Topology::symmetric(2, 2), cfg, |p, _| {
        let phase = if p == ProcessId(0) {
            Duration::from_millis(500)
        } else {
            Duration::from_secs(1)
        };
        DeterministicMerge::with_phase(p, Duration::from_secs(1), phase)
    });
    let dest = sim.topology().all_groups();
    // Degree 1 rides timestamps *concurrent* with the cast — the essence of
    // [1]'s infinitely-many-messages model. Cast just before the other
    // publishers' heartbeats (at t = 2000 ms) so their nulls are emitted
    // after the cast instant but before m's copies reach them.
    let id = sim.cast_at(
        SimTime::from_millis(1950),
        ProcessId(0),
        dest,
        Payload::new(),
    );
    assert!(sim.run_until_delivered(&[id], SimTime::from_millis(60_000)));
    assert_eq!(sim.metrics().latency_degree(id), Some(1));
    check_ordering(&sim);
}

#[test]
fn detmerge_multicast_filters_destinations() {
    let cfg = SimConfig::default().with_seed(12);
    let mut sim = Simulation::new(Topology::symmetric(3, 1), cfg, |p, _| {
        DeterministicMerge::new(p, Duration::from_millis(500))
    });
    let dest = GroupSet::from_iter([GroupId(0), GroupId(1)]);
    let id = sim.cast_at(
        SimTime::from_millis(700),
        ProcessId(0),
        dest,
        Payload::new(),
    );
    assert!(sim.run_until_delivered(&[id], SimTime::from_millis(60_000)));
    assert!(!sim.metrics().has_delivered(ProcessId(2), id));
    assert!(sim.metrics().has_delivered(ProcessId(1), id));
    check_ordering(&sim);
    // Not genuine: the bystander g2 still receives null streams.
    assert!(sim.metrics().received_any[2]);
}

#[test]
fn detmerge_total_order_multiple_publishers() {
    let cfg = SimConfig::default().with_seed(13);
    let mut sim = Simulation::new(Topology::symmetric(2, 2), cfg, |p, _| {
        DeterministicMerge::new(p, Duration::from_millis(200))
    });
    let dest = sim.topology().all_groups();
    let mut ids = Vec::new();
    for i in 0..12u64 {
        ids.push(sim.cast_at(
            SimTime::from_millis(300 + i * 37),
            ProcessId((i % 4) as u32),
            dest,
            Payload::new(),
        ));
    }
    assert!(sim.run_until_delivered(&ids, SimTime::from_millis(60_000)));
    check_ordering(&sim);
    let reference = sim.metrics().delivered_seq[0].clone();
    assert_eq!(reference.len(), 12);
    for p in sim.topology().processes() {
        assert_eq!(sim.metrics().delivered_seq[p.index()], reference, "{p}");
    }
}

#[test]
fn detmerge_is_not_quiescent() {
    // The price of degree 1 by streams: heartbeats never stop (E10).
    let cfg = SimConfig::default().with_seed(14);
    let mut sim = Simulation::new(Topology::symmetric(2, 1), cfg, |p, _| {
        DeterministicMerge::new(p, Duration::from_millis(100))
    });
    sim.run_until(SimTime::from_millis(5_000));
    let r = invariants::check_quiescence(sim.metrics(), SimTime::from_millis(1_000));
    assert!(!r.is_ok(), "deterministic merge must keep heartbeating");
}
