//! Process and group identifiers.

use std::fmt;

/// Identifier of a process in the system Π = {p₁, …, pₙ}.
///
/// Process ids are dense indices assigned by the [`Topology`]: the first
/// process of the first group is `ProcessId(0)`, and ids increase across
/// groups in declaration order. They are `Copy`, cheap to hash, and totally
/// ordered, which several protocols exploit (e.g. coordinator election picks
/// the smallest non-suspected id).
///
/// [`Topology`]: crate::Topology
///
/// # Example
///
/// ```
/// use wamcast_types::ProcessId;
/// let p = ProcessId(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(format!("{p}"), "p3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// The id as a dense `usize` index, suitable for indexing per-process
    /// vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(v: u32) -> Self {
        ProcessId(v)
    }
}

/// Identifier of a group in Γ = {g₁, …, gₘ}.
///
/// Groups model geographical sites: processes inside a group communicate over
/// cheap local links, while inter-group links are orders of magnitude slower
/// (§1 of the paper). Group ids are dense indices below [`GroupSet::MAX_GROUPS`].
///
/// [`GroupSet::MAX_GROUPS`]: crate::GroupSet::MAX_GROUPS
///
/// # Example
///
/// ```
/// use wamcast_types::GroupId;
/// let g = GroupId(1);
/// assert_eq!(g.index(), 1);
/// assert_eq!(format!("{g}"), "g1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GroupId(pub u16);

impl GroupId {
    /// The id as a dense `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl From<u16> for GroupId {
    fn from(v: u16) -> Self {
        GroupId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn process_id_ordering_is_numeric() {
        let mut set = BTreeSet::new();
        set.insert(ProcessId(5));
        set.insert(ProcessId(1));
        set.insert(ProcessId(3));
        let v: Vec<_> = set.into_iter().collect();
        assert_eq!(v, vec![ProcessId(1), ProcessId(3), ProcessId(5)]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ProcessId(0).to_string(), "p0");
        assert_eq!(GroupId(7).to_string(), "g7");
        assert_eq!(format!("{:?}", ProcessId(2)), "p2");
    }

    #[test]
    fn conversions() {
        assert_eq!(ProcessId::from(9u32), ProcessId(9));
        assert_eq!(GroupId::from(4u16), GroupId(4));
        assert_eq!(ProcessId(12).index(), 12usize);
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", ProcessId::default()).is_empty());
        assert!(!format!("{:?}", GroupId::default()).is_empty());
    }
}
