//! Error types.

use std::error::Error;
use std::fmt;

/// Error building or validating a [`Topology`](crate::Topology).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A topology must contain at least one group.
    NoGroups,
    /// Groups must be non-empty (§2.1: disjoint, non-empty, covering Π).
    EmptyGroup {
        /// Index of the offending group.
        group: usize,
    },
    /// More groups than [`GroupSet::MAX_GROUPS`](crate::GroupSet::MAX_GROUPS)
    /// were declared.
    TooManyGroups {
        /// Number of groups requested.
        requested: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NoGroups => write!(f, "topology has no groups"),
            TopologyError::EmptyGroup { group } => {
                write!(f, "group {group} is empty; groups must be non-empty")
            }
            TopologyError::TooManyGroups { requested } => write!(
                f,
                "{requested} groups requested but at most {} are supported",
                crate::GroupSet::MAX_GROUPS
            ),
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            TopologyError::NoGroups.to_string(),
            TopologyError::EmptyGroup { group: 2 }.to_string(),
            TopologyError::TooManyGroups { requested: 100 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            let first_alpha = m.chars().find(|c| c.is_alphabetic()).unwrap();
            assert!(first_alpha.is_lowercase(), "{m}");
            assert!(!m.ends_with('.'), "{m}");
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_err(TopologyError::NoGroups);
    }
}
