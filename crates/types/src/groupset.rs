//! Compact destination sets over groups.

use crate::GroupId;
use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Sub};

/// A set of groups, `m.dest ⊆ Γ`, stored as a 128-bit mask.
///
/// Atomic multicast addresses messages to arbitrary subsets of the system's
/// groups (§2.2). Destination sets are consulted on every protocol step, so
/// they must be tiny and `Copy`; a bitmask over at most
/// [`MAX_GROUPS`](Self::MAX_GROUPS) groups suffices for any realistic WAN
/// deployment (the paper's experiments consider a handful of sites).
///
/// # Example
///
/// ```
/// use wamcast_types::{GroupSet, GroupId};
///
/// let a = GroupSet::from_iter([GroupId(0), GroupId(1)]);
/// let b = GroupSet::singleton(GroupId(1));
/// assert_eq!((a & b).len(), 1);
/// assert_eq!((a - b), GroupSet::singleton(GroupId(0)));
/// assert!(a.contains(GroupId(0)));
/// assert_eq!(a.iter().collect::<Vec<_>>(), vec![GroupId(0), GroupId(1)]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GroupSet(u128);

impl GroupSet {
    /// Maximum number of distinct groups representable (bit width of the mask).
    pub const MAX_GROUPS: usize = 128;

    /// The empty set.
    pub const EMPTY: GroupSet = GroupSet(0);

    /// Creates an empty set.
    ///
    /// # Example
    ///
    /// ```
    /// # use wamcast_types::GroupSet;
    /// assert!(GroupSet::new().is_empty());
    /// ```
    #[inline]
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// The set containing exactly one group.
    ///
    /// # Panics
    ///
    /// Panics if `g.index() >= MAX_GROUPS`.
    #[inline]
    pub fn singleton(g: GroupId) -> Self {
        assert!(
            g.index() < Self::MAX_GROUPS,
            "group id {g} out of range for GroupSet"
        );
        GroupSet(1u128 << g.index())
    }

    /// The set {g₀, …, g_{k−1}} of the first `k` groups.
    ///
    /// Convenient for building broadcast destinations (`m.dest = Γ`).
    ///
    /// # Panics
    ///
    /// Panics if `k > MAX_GROUPS`.
    #[inline]
    pub fn first_n(k: usize) -> Self {
        assert!(k <= Self::MAX_GROUPS, "too many groups: {k}");
        if k == Self::MAX_GROUPS {
            GroupSet(u128::MAX)
        } else {
            GroupSet((1u128 << k) - 1)
        }
    }

    /// Inserts a group; returns `true` if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `g.index() >= MAX_GROUPS`.
    #[inline]
    pub fn insert(&mut self, g: GroupId) -> bool {
        let single = Self::singleton(g);
        let fresh = self.0 & single.0 == 0;
        self.0 |= single.0;
        fresh
    }

    /// Removes a group; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, g: GroupId) -> bool {
        if g.index() >= Self::MAX_GROUPS {
            return false;
        }
        let bit = 1u128 << g.index();
        let had = self.0 & bit != 0;
        self.0 &= !bit;
        had
    }

    /// Whether `g` is a member.
    #[inline]
    pub fn contains(self, g: GroupId) -> bool {
        g.index() < Self::MAX_GROUPS && self.0 & (1u128 << g.index()) != 0
    }

    /// Number of groups in the set (|m.dest|; the paper's stage-skipping
    /// test is `|m.dest| > 1`).
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset(self, other: GroupSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether the two sets share at least one group.
    #[inline]
    pub fn intersects(self, other: GroupSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Iterates over members in increasing [`GroupId`] order.
    #[inline]
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }

    /// The smallest group id in the set, if any. Used by ring-based
    /// baselines that traverse destination groups in id order.
    #[inline]
    pub fn min(self) -> Option<GroupId> {
        if self.0 == 0 {
            None
        } else {
            Some(GroupId(self.0.trailing_zeros() as u16))
        }
    }

    /// The raw bitmask. Exposed for hashing/serialization in traces.
    ///
    /// Note the wire format still carries destination sets as a `u64`
    /// (wire v1 predates the 128-group mask); see the `Wire` impl for the
    /// ≤64-group encoding guard.
    #[inline]
    pub fn bits(self) -> u128 {
        self.0
    }

    /// Rebuilds a set from a raw bitmask produced by [`bits`](Self::bits).
    #[inline]
    pub fn from_bits(bits: u128) -> Self {
        GroupSet(bits)
    }
}

/// Iterator over the members of a [`GroupSet`] in increasing id order.
#[derive(Clone, Debug)]
pub struct Iter(u128);

impl Iterator for Iter {
    type Item = GroupId;

    fn next(&mut self) -> Option<GroupId> {
        if self.0 == 0 {
            None
        } else {
            let idx = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(GroupId(idx as u16))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl FromIterator<GroupId> for GroupSet {
    fn from_iter<T: IntoIterator<Item = GroupId>>(iter: T) -> Self {
        let mut s = GroupSet::new();
        for g in iter {
            s.insert(g);
        }
        s
    }
}

impl Extend<GroupId> for GroupSet {
    fn extend<T: IntoIterator<Item = GroupId>>(&mut self, iter: T) {
        for g in iter {
            self.insert(g);
        }
    }
}

impl IntoIterator for GroupSet {
    type Item = GroupId;
    type IntoIter = Iter;
    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl From<GroupId> for GroupSet {
    fn from(g: GroupId) -> Self {
        GroupSet::singleton(g)
    }
}

impl BitOr for GroupSet {
    type Output = GroupSet;
    fn bitor(self, rhs: GroupSet) -> GroupSet {
        GroupSet(self.0 | rhs.0)
    }
}

impl BitOrAssign for GroupSet {
    fn bitor_assign(&mut self, rhs: GroupSet) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for GroupSet {
    type Output = GroupSet;
    fn bitand(self, rhs: GroupSet) -> GroupSet {
        GroupSet(self.0 & rhs.0)
    }
}

impl Sub for GroupSet {
    type Output = GroupSet;
    fn sub(self, rhs: GroupSet) -> GroupSet {
        GroupSet(self.0 & !rhs.0)
    }
}

impl fmt::Debug for GroupSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        let mut first = true;
        for g in self.iter() {
            if !first {
                f.write_str(",")?;
            }
            write!(f, "{g}")?;
            first = false;
        }
        f.write_str("}")
    }
}

impl fmt::Display for GroupSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn empty_set() {
        let s = GroupSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(format!("{s:?}"), "{}");
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = GroupSet::new();
        assert!(s.insert(GroupId(3)));
        assert!(!s.insert(GroupId(3)));
        assert!(s.contains(GroupId(3)));
        assert!(!s.contains(GroupId(2)));
        assert!(s.remove(GroupId(3)));
        assert!(!s.remove(GroupId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn first_n_matches_manual() {
        let s = GroupSet::first_n(3);
        assert_eq!(s.len(), 3);
        for i in 0..3 {
            assert!(s.contains(GroupId(i)));
        }
        assert!(!s.contains(GroupId(3)));
        assert_eq!(GroupSet::first_n(0), GroupSet::EMPTY);
        assert_eq!(GroupSet::first_n(64).len(), 64);
        assert!(GroupSet::first_n(64).contains(GroupId(63)));
        assert_eq!(GroupSet::first_n(128).len(), 128);
        assert!(GroupSet::first_n(128).contains(GroupId(127)));
    }

    #[test]
    fn set_algebra() {
        let a = GroupSet::from_iter([GroupId(0), GroupId(1), GroupId(2)]);
        let b = GroupSet::from_iter([GroupId(1), GroupId(5)]);
        assert_eq!((a | b).len(), 4);
        assert_eq!((a & b), GroupSet::singleton(GroupId(1)));
        assert_eq!((a - b), GroupSet::from_iter([GroupId(0), GroupId(2)]));
        assert!(b.intersects(a));
        assert!((a & b).is_subset(a));
        assert!(!a.is_subset(b));
    }

    #[test]
    fn iteration_order_is_ascending() {
        let s = GroupSet::from_iter([GroupId(9), GroupId(1), GroupId(4)]);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![GroupId(1), GroupId(4), GroupId(9)]);
        assert_eq!(s.min(), Some(GroupId(1)));
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_group_panics() {
        GroupSet::singleton(GroupId(128));
    }

    #[test]
    fn bits_roundtrip() {
        let s = GroupSet::from_iter([GroupId(0), GroupId(63), GroupId(127)]);
        assert_eq!(GroupSet::from_bits(s.bits()), s);
    }

    #[test]
    fn debug_lists_members() {
        let s = GroupSet::from_iter([GroupId(2), GroupId(0)]);
        assert_eq!(format!("{s:?}"), "{g0,g2}");
        assert_eq!(format!("{s}"), "{g0,g2}");
    }

    #[test]
    fn insert_then_contains() {
        let mut rng = SplitMix64::new(0x6517);
        for case in 0..256 {
            let ids: Vec<u16> = (0..rng.next_below(20))
                .map(|_| rng.next_below(128) as u16)
                .collect();
            let mut s = GroupSet::new();
            for &i in &ids {
                s.insert(GroupId(i));
            }
            for &i in &ids {
                assert!(s.contains(GroupId(i)), "case {case}");
            }
            let unique: std::collections::BTreeSet<_> = ids.iter().copied().collect();
            assert_eq!(s.len(), unique.len(), "case {case}");
        }
    }

    #[test]
    fn union_is_commutative() {
        let mut rng = SplitMix64::new(0xC0117);
        for case in 0..256 {
            let (x, y) = (
                GroupSet::from_bits((rng.next_u64() as u128) << 64 | rng.next_u64() as u128),
                GroupSet::from_bits((rng.next_u64() as u128) << 64 | rng.next_u64() as u128),
            );
            assert_eq!(x | y, y | x, "case {case}");
            assert_eq!(x & y, y & x, "case {case}");
        }
    }

    #[test]
    fn difference_disjoint_from_subtrahend() {
        let mut rng = SplitMix64::new(0xD1FF);
        for case in 0..256 {
            let (x, y) = (
                GroupSet::from_bits((rng.next_u64() as u128) << 64 | rng.next_u64() as u128),
                GroupSet::from_bits((rng.next_u64() as u128) << 64 | rng.next_u64() as u128),
            );
            assert!(!(x - y).intersects(y), "case {case}");
            assert!((x - y).is_subset(x), "case {case}");
        }
    }
}
