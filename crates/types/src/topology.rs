//! Static group membership.

use crate::{GroupId, GroupSet, ProcessId, TopologyError};

/// The static system layout: disjoint, non-empty groups covering Π (§2.1).
///
/// Processes are numbered densely and contiguously inside each group, in
/// group declaration order, so `group_of` and `members` are O(1) lookups.
/// A `Topology` is immutable after construction — the paper's model has no
/// reconfiguration — and cheap to clone (it is shared by every simulated
/// process).
///
/// # Example
///
/// ```
/// use wamcast_types::{Topology, GroupId, ProcessId};
///
/// let topo = Topology::builder().group(2).group(3).build()?;
/// assert_eq!(topo.num_groups(), 2);
/// assert_eq!(topo.num_processes(), 5);
/// assert_eq!(topo.group_of(ProcessId(3)), GroupId(1));
/// assert_eq!(topo.members(GroupId(0)), &[ProcessId(0), ProcessId(1)]);
/// # Ok::<(), wamcast_types::TopologyError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    /// `members[g]` = processes of group g, ascending.
    members: Vec<Vec<ProcessId>>,
    /// `group_of[p]` = group of process p.
    group_of: Vec<GroupId>,
}

impl Topology {
    /// Starts building a topology group by group.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder { sizes: Vec::new() }
    }

    /// A symmetric topology of `k` groups with `d` processes each — the
    /// configuration used throughout the paper's Figure 1 comparison.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `d == 0`, or `k > GroupSet::MAX_GROUPS`; use
    /// [`builder`](Self::builder) for fallible construction.
    pub fn symmetric(k: usize, d: usize) -> Self {
        let mut b = Self::builder();
        for _ in 0..k {
            b = b.group(d);
        }
        b.build()
            .expect("symmetric topology arguments must be valid")
    }

    /// Number of groups |Γ|.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.members.len()
    }

    /// Number of processes |Π|.
    #[inline]
    pub fn num_processes(&self) -> usize {
        self.group_of.len()
    }

    /// The group a process belongs to (`group(p)`; total function by §2.1).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a process of this topology.
    #[inline]
    pub fn group_of(&self, p: ProcessId) -> GroupId {
        self.group_of[p.index()]
    }

    /// Members of a group, in ascending process-id order.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not a group of this topology.
    #[inline]
    pub fn members(&self, g: GroupId) -> &[ProcessId] {
        &self.members[g.index()]
    }

    /// Whether `p` and `q` are in the same group (their link is "cheap").
    #[inline]
    pub fn same_group(&self, p: ProcessId, q: ProcessId) -> bool {
        self.group_of(p) == self.group_of(q)
    }

    /// All process ids, ascending.
    pub fn processes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.num_processes() as u32).map(ProcessId)
    }

    /// All group ids, ascending.
    pub fn groups(&self) -> impl Iterator<Item = GroupId> + '_ {
        (0..self.num_groups() as u16).map(GroupId)
    }

    /// The full destination set Γ, for broadcasts (`m.dest = Γ`; §2.2).
    #[inline]
    pub fn all_groups(&self) -> GroupSet {
        GroupSet::first_n(self.num_groups())
    }

    /// Processes addressed by a destination set: `{p | group(p) ∈ dest}`.
    /// The paper writes `p ∈ m.dest` for this (§2.2).
    pub fn processes_in(&self, dest: GroupSet) -> impl Iterator<Item = ProcessId> + '_ {
        dest.iter()
            .flat_map(move |g| self.members(g).iter().copied())
    }

    /// Whether `p ∈ m.dest` in the paper's abuse of notation.
    #[inline]
    pub fn addresses(&self, dest: GroupSet, p: ProcessId) -> bool {
        dest.contains(self.group_of(p))
    }

    /// Size of the majority quorum of group `g` (⌊d/2⌋+1); intra-group
    /// consensus requires a majority of each group to be correct.
    #[inline]
    pub fn group_majority(&self, g: GroupId) -> usize {
        self.members(g).len() / 2 + 1
    }
}

/// Incremental builder for [`Topology`].
///
/// # Example
///
/// ```
/// use wamcast_types::Topology;
/// let topo = Topology::builder().group(1).group(4).group(2).build()?;
/// assert_eq!(topo.num_processes(), 7);
/// # Ok::<(), wamcast_types::TopologyError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct TopologyBuilder {
    sizes: Vec<usize>,
}

impl TopologyBuilder {
    /// Appends a group with `size` processes.
    #[must_use]
    pub fn group(mut self, size: usize) -> Self {
        self.sizes.push(size);
        self
    }

    /// Finalizes the topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if no groups were declared, any group is
    /// empty, or more than [`GroupSet::MAX_GROUPS`] groups were declared.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.sizes.is_empty() {
            return Err(TopologyError::NoGroups);
        }
        if self.sizes.len() > GroupSet::MAX_GROUPS {
            return Err(TopologyError::TooManyGroups {
                requested: self.sizes.len(),
            });
        }
        if let Some(g) = self.sizes.iter().position(|&s| s == 0) {
            return Err(TopologyError::EmptyGroup { group: g });
        }
        let mut members = Vec::with_capacity(self.sizes.len());
        let mut group_of = Vec::new();
        let mut next = 0u32;
        for (gi, &size) in self.sizes.iter().enumerate() {
            let mut g = Vec::with_capacity(size);
            for _ in 0..size {
                g.push(ProcessId(next));
                group_of.push(GroupId(gi as u16));
                next += 1;
            }
            members.push(g);
        }
        Ok(Topology { members, group_of })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn symmetric_layout() {
        let t = Topology::symmetric(3, 2);
        assert_eq!(t.num_groups(), 3);
        assert_eq!(t.num_processes(), 6);
        assert_eq!(t.members(GroupId(1)), &[ProcessId(2), ProcessId(3)]);
        assert_eq!(t.group_of(ProcessId(5)), GroupId(2));
        assert!(t.same_group(ProcessId(0), ProcessId(1)));
        assert!(!t.same_group(ProcessId(1), ProcessId(2)));
    }

    #[test]
    fn asymmetric_layout() {
        let t = Topology::builder().group(1).group(3).build().unwrap();
        assert_eq!(t.members(GroupId(0)), &[ProcessId(0)]);
        assert_eq!(
            t.members(GroupId(1)),
            &[ProcessId(1), ProcessId(2), ProcessId(3)]
        );
    }

    #[test]
    fn builder_errors() {
        assert_eq!(
            Topology::builder().build().unwrap_err(),
            TopologyError::NoGroups
        );
        assert_eq!(
            Topology::builder().group(2).group(0).build().unwrap_err(),
            TopologyError::EmptyGroup { group: 1 }
        );
        let mut b = Topology::builder();
        for _ in 0..129 {
            b = b.group(1);
        }
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::TooManyGroups { requested: 129 }
        );
        // 128 groups (the full mask) is now constructible.
        assert_eq!(Topology::symmetric(128, 1).num_groups(), 128);
    }

    #[test]
    fn destination_queries() {
        let t = Topology::symmetric(3, 2);
        let dest = GroupSet::from_iter([GroupId(0), GroupId(2)]);
        let procs: Vec<_> = t.processes_in(dest).collect();
        assert_eq!(
            procs,
            vec![ProcessId(0), ProcessId(1), ProcessId(4), ProcessId(5)]
        );
        assert!(t.addresses(dest, ProcessId(0)));
        assert!(!t.addresses(dest, ProcessId(2)));
        assert_eq!(t.all_groups().len(), 3);
    }

    #[test]
    fn majorities() {
        let t = Topology::builder()
            .group(1)
            .group(2)
            .group(5)
            .build()
            .unwrap();
        assert_eq!(t.group_majority(GroupId(0)), 1);
        assert_eq!(t.group_majority(GroupId(1)), 2);
        assert_eq!(t.group_majority(GroupId(2)), 3);
    }

    #[test]
    fn iterators_cover_everything() {
        let t = Topology::symmetric(2, 3);
        assert_eq!(t.processes().count(), 6);
        assert_eq!(t.groups().count(), 2);
        assert_eq!(t.processes().last(), Some(ProcessId(5)));
    }

    #[test]
    fn groups_partition_processes() {
        let mut rng = SplitMix64::new(0x70B0);
        for case in 0..256 {
            let sizes: Vec<usize> = (0..1 + rng.next_below(9))
                .map(|_| 1 + rng.next_below(4) as usize)
                .collect();
            let mut b = Topology::builder();
            for &s in &sizes {
                b = b.group(s);
            }
            let t = b.build().unwrap();
            // Disjoint + covering: each process appears in exactly the group
            // that group_of reports, and nowhere else.
            let mut seen = vec![0usize; t.num_processes()];
            for g in t.groups() {
                for &p in t.members(g) {
                    assert_eq!(t.group_of(p), g, "case {case}");
                    seen[p.index()] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "case {case}");
        }
    }
}
