//! A deterministic, dependency-free fast hasher for hot point-query maps.
//!
//! The protocol hot paths look up `MessageId`s, instance numbers and
//! process ids hundreds of times per simulated event. `BTreeMap` pays a
//! pointer chase per tree level; `std`'s default `HashMap` hasher
//! (SipHash-1-3 behind a per-process random seed) is built for HashDoS
//! resistance the simulator does not need — and its random seed would make
//! map *iteration* order differ between runs, a foot-gun under this
//! workspace's determinism contract. `FxHasher` is the multiply-rotate
//! hash used by rustc itself (Firefox lineage): seedless — so identical
//! runs hash identically — and a handful of cycles per word.
//!
//! Usage rule (same as the `proto` module's determinism contract):
//! [`FxHashMap`]/[`FxHashSet`] are for **point queries only**. Anything a
//! handler *iterates* keeps a `BTreeMap`/`BTreeSet` or a sorted vector,
//! because even a deterministic hash map's iteration order is an artifact
//! of insertion history and capacity growth, not a meaning-bearing order.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The rustc-Fx multiply constant (64-bit golden-ratio derived).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Seedless multiply-rotate hasher; see the [module docs](self).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, seedless).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the deterministic fast hasher. Point queries
/// only — do not iterate in protocol code.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` backed by the deterministic fast hasher. Point queries
/// only — do not iterate in protocol code.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn hashing_is_deterministic_across_builders() {
        let a = FxBuildHasher::default().hash_one(0xDEAD_BEEFu64);
        let b = FxBuildHasher::default().hash_one(0xDEAD_BEEFu64);
        assert_eq!(a, b);
        assert_ne!(a, FxBuildHasher::default().hash_one(0xDEAD_BEF0u64));
    }

    #[test]
    fn byte_stream_matches_padding_rules() {
        // 9 bytes = one full word + one zero-padded tail word.
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut h2 = FxHasher::default();
        h2.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        h2.write_u64(9);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn maps_roundtrip() {
        let mut m: FxHashMap<crate::MessageId, u32> = FxHashMap::default();
        let id = crate::MessageId::new(crate::ProcessId(3), 17);
        m.insert(id, 9);
        assert_eq!(m.get(&id), Some(&9));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(5));
        assert!(!s.insert(5));
    }
}
