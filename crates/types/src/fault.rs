//! Deterministic fault injection: the [`FaultPlan`] adversary.
//!
//! The paper's algorithms are proved correct over crash-stop processes and
//! quasi-reliable links; their interesting behavior — Paxos recovery
//! ballots, `on_crash_notification` relays, retransmission — only shows
//! *under failures*. This module defines a declarative, runtime-agnostic
//! adversary:
//!
//! * [`FaultPlan`] — a concrete schedule of faults: crash-at times, per
//!   directed-pair link-drop probabilities, partition/heal windows, message
//!   duplication and latency spikes, each scoped to a [`FaultWindow`];
//! * [`FaultConfig`] — a *distribution* over plans; [`FaultConfig::compile`]
//!   turns `(config, topology, seed)` into a concrete plan, deterministically
//!   and respecting liveness preconditions (per-group crash minorities,
//!   bounded fault horizons);
//! * [`FaultInjector`] — the runtime state: given one message copy
//!   `(from, to, now)` it returns a [`LinkFate`] (deliver / drop / duplicate
//!   / delay factor), drawing from its own [`SplitMix64`] stream so fault
//!   decisions never perturb the host's main schedule stream.
//!
//! Both runtimes consume the same adversary: the discrete-event simulator
//! applies fates at delivery-scheduling time (virtual time), and the
//! threaded runtime (`wamcast-net`) applies them at channel-send time
//! (wall-clock offsets). A simulated run therefore stays a pure function of
//! `(topology, config, workload, seed)` — every fuzzed failure reproduces
//! bit-for-bit from its seed and [`FaultPlan::fingerprint`].
//!
//! # Semantics
//!
//! * **Crashes** are schedule entries `(at, process)`; the host kills the
//!   process and drives its ◇P oracle as for manual crash injection.
//! * **Drops** apply per message *copy* on a directed process pair while the
//!   rule's window is active; multiple matching rules compound.
//! * **Partitions** split the process set in two sides for a window; every
//!   copy crossing the cut is dropped (both directions) until the window
//!   closes ("heals").
//! * **Duplication** delivers a second copy of a surviving message, delayed
//!   by a random extra fraction of the link latency.
//! * **Latency spikes** multiply the sampled link delay while active.
//! * **Self-sends** (`from == to`) model process-local hand-offs, not
//!   network traffic: no fault ever applies to them.
//!
//! # Example
//!
//! ```
//! use wamcast_types::{FaultInjector, FaultPlan, ProcessId, SimTime};
//!
//! let plan = FaultPlan::none()
//!     .with_crash(SimTime::from_millis(50), ProcessId(3))
//!     .with_drop_during(
//!         ProcessId(0),
//!         ProcessId(1),
//!         1.0,
//!         SimTime::ZERO,
//!         SimTime::from_millis(10),
//!     );
//! let mut inj = FaultInjector::new(plan, 7);
//! // Inside the window the 0 -> 1 link drops everything…
//! assert!(inj.on_send(ProcessId(0), ProcessId(1), SimTime::from_millis(5)).dropped);
//! // …after it heals, copies flow again.
//! assert!(!inj.on_send(ProcessId(0), ProcessId(1), SimTime::from_millis(20)).dropped);
//! ```

use crate::{ProcessId, SimTime, SplitMix64, Topology};
use std::time::Duration;

/// Half-open interval of activity `[from, until)` for one fault rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultWindow {
    /// First instant at which the rule applies.
    pub from: SimTime,
    /// First instant at which it no longer applies.
    pub until: SimTime,
}

impl FaultWindow {
    /// A window covering all of time.
    pub const ALWAYS: FaultWindow = FaultWindow {
        from: SimTime::ZERO,
        until: SimTime::MAX,
    };

    /// Builds `[from, until)`.
    pub fn new(from: SimTime, until: SimTime) -> Self {
        FaultWindow { from, until }
    }

    /// Whether `t` falls inside the window.
    #[inline]
    pub fn contains(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// Per directed-pair probabilistic message loss.
#[derive(Clone, Debug, PartialEq)]
pub struct DropRule {
    /// Sending process.
    pub from: ProcessId,
    /// Receiving process.
    pub to: ProcessId,
    /// Per-copy drop probability in `[0, 1]`.
    pub prob: f64,
    /// When the rule is active.
    pub window: FaultWindow,
}

/// A network partition: copies crossing between `side` and its complement
/// are dropped while the window is active; the partition heals when it ends.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionRule {
    /// One side of the cut (the other side is the complement).
    pub side: Vec<ProcessId>,
    /// When the partition is in force.
    pub window: FaultWindow,
}

/// Probabilistic duplication of surviving copies.
#[derive(Clone, Debug, PartialEq)]
pub struct DuplicateRule {
    /// Per-copy duplication probability in `[0, 1]`.
    pub prob: f64,
    /// When the rule is active.
    pub window: FaultWindow,
}

/// Multiplies sampled link delays while active (WAN congestion burst).
#[derive(Clone, Debug, PartialEq)]
pub struct SpikeRule {
    /// Delay multiplier (`>= 1.0`).
    pub factor: f64,
    /// When the spike is in force.
    pub window: FaultWindow,
}

/// A concrete, declarative fault schedule (see the module docs).
///
/// Plans are plain data: build one with the `with_*` combinators, compile
/// one from a seed with [`FaultConfig::compile`], or ship one to either
/// runtime. [`FaultPlan::none`] is the identity adversary; hosts treat it as
/// "no fault layer at all" (the zero-fault fast path is byte-identical to a
/// run without fault injection — guarded by a property test in
/// `wamcast-sim`).
///
/// ```
/// use wamcast_types::{FaultPlan, ProcessId, SimTime};
///
/// // Crash p2 at t=80ms, and partition {p0, p1} away from everyone else
/// // for the first 50ms (the cut heals when the window closes).
/// let plan = FaultPlan::none()
///     .with_crash(SimTime::from_millis(80), ProcessId(2))
///     .with_partition(
///         &[ProcessId(0), ProcessId(1)],
///         SimTime::ZERO,
///         SimTime::from_millis(50),
///     );
/// assert!(!plan.is_none());
///
/// // Plans are plain data with a canonical fingerprint: the same
/// // combinators always rebuild the same adversary, which is what a
/// // `--replay --plan-hash` line checks against.
/// let again = FaultPlan::none()
///     .with_crash(SimTime::from_millis(80), ProcessId(2))
///     .with_partition(
///         &[ProcessId(0), ProcessId(1)],
///         SimTime::ZERO,
///         SimTime::from_millis(50),
///     );
/// assert_eq!(plan.fingerprint(), again.fingerprint());
/// assert_ne!(plan.fingerprint(), FaultPlan::none().fingerprint());
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    /// Scheduled crash-stop failures.
    pub crashes: Vec<(SimTime, ProcessId)>,
    /// Probabilistic loss rules.
    pub drops: Vec<DropRule>,
    /// Partition/heal windows.
    pub partitions: Vec<PartitionRule>,
    /// Duplication rules.
    pub duplicates: Vec<DuplicateRule>,
    /// Latency-spike rules.
    pub spikes: Vec<SpikeRule>,
}

impl FaultPlan {
    /// The empty plan: no faults whatsoever.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing (hosts skip the fault layer
    /// entirely, keeping the zero-fault path byte-identical).
    pub fn is_none(&self) -> bool {
        self.crashes.is_empty()
            && self.drops.is_empty()
            && self.partitions.is_empty()
            && self.duplicates.is_empty()
            && self.spikes.is_empty()
    }

    /// Schedules a crash of `p` at `at`.
    #[must_use]
    pub fn with_crash(mut self, at: SimTime, p: ProcessId) -> Self {
        self.crashes.push((at, p));
        self
    }

    /// Drops copies on the directed link `from -> to` with probability
    /// `prob`, forever.
    #[must_use]
    pub fn with_drop(self, from: ProcessId, to: ProcessId, prob: f64) -> Self {
        self.with_drop_during(from, to, prob, SimTime::ZERO, SimTime::MAX)
    }

    /// Drops copies on the directed link `from -> to` with probability
    /// `prob` while `start <= now < until`.
    #[must_use]
    pub fn with_drop_during(
        mut self,
        from: ProcessId,
        to: ProcessId,
        prob: f64,
        start: SimTime,
        until: SimTime,
    ) -> Self {
        self.drops.push(DropRule {
            from,
            to,
            prob,
            window: FaultWindow::new(start, until),
        });
        self
    }

    /// Partitions `side` from the rest of the system during
    /// `[start, until)`; the cut heals at `until`.
    #[must_use]
    pub fn with_partition(mut self, side: &[ProcessId], start: SimTime, until: SimTime) -> Self {
        let mut side = side.to_vec();
        side.sort_unstable();
        side.dedup();
        self.partitions.push(PartitionRule {
            side,
            window: FaultWindow::new(start, until),
        });
        self
    }

    /// Duplicates surviving copies with probability `prob` during
    /// `[start, until)`.
    #[must_use]
    pub fn with_duplication(mut self, prob: f64, start: SimTime, until: SimTime) -> Self {
        self.duplicates.push(DuplicateRule {
            prob,
            window: FaultWindow::new(start, until),
        });
        self
    }

    /// Multiplies link delays by `factor` during `[start, until)`.
    #[must_use]
    pub fn with_latency_spike(mut self, factor: f64, start: SimTime, until: SimTime) -> Self {
        self.spikes.push(SpikeRule {
            factor,
            window: FaultWindow::new(start, until),
        });
        self
    }

    /// A stable 64-bit fingerprint of the plan, printed in replay lines
    /// (`--plan-hash`) so a reproduced run can prove it rebuilt the same
    /// adversary. FNV-1a over a canonical field encoding.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.crashes.len() as u64);
        for &(at, p) in &self.crashes {
            h.u64(at.as_nanos());
            h.u64(u64::from(p.0));
        }
        h.u64(self.drops.len() as u64);
        for d in &self.drops {
            h.u64(u64::from(d.from.0));
            h.u64(u64::from(d.to.0));
            h.u64(d.prob.to_bits());
            h.window(d.window);
        }
        h.u64(self.partitions.len() as u64);
        for p in &self.partitions {
            h.u64(p.side.len() as u64);
            for q in &p.side {
                h.u64(u64::from(q.0));
            }
            h.window(p.window);
        }
        h.u64(self.duplicates.len() as u64);
        for d in &self.duplicates {
            h.u64(d.prob.to_bits());
            h.window(d.window);
        }
        h.u64(self.spikes.len() as u64);
        for s in &self.spikes {
            h.u64(s.factor.to_bits());
            h.window(s.window);
        }
        h.finish()
    }

    /// The last instant at which any non-crash rule can still act (`None`
    /// when a rule is unbounded). Useful for choosing run deadlines: after
    /// this instant plus detection/retransmission time, a live protocol
    /// must converge.
    pub fn fault_horizon(&self) -> Option<SimTime> {
        let mut horizon = SimTime::ZERO;
        let windows = self
            .drops
            .iter()
            .map(|d| d.window)
            .chain(self.partitions.iter().map(|p| p.window))
            .chain(self.duplicates.iter().map(|d| d.window))
            .chain(self.spikes.iter().map(|s| s.window));
        for w in windows {
            if w.until == SimTime::MAX {
                return None;
            }
            horizon = horizon.max(w.until);
        }
        Some(horizon)
    }
}

/// Tiny FNV-1a accumulator for [`FaultPlan::fingerprint`].
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn window(&mut self, w: FaultWindow) {
        self.u64(w.from.as_nanos());
        self.u64(w.until.as_nanos());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The fate of one message copy, decided by [`FaultInjector::on_send`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFate {
    /// The copy never arrives.
    pub dropped: bool,
    /// A second copy arrives, delayed by this extra fraction of the link
    /// latency (`None` = no duplicate).
    pub duplicate: Option<f64>,
    /// Multiplier applied to the sampled link delay (`1.0` = unchanged).
    pub delay_factor: f64,
}

impl LinkFate {
    /// The fate of an unmolested copy.
    pub const CLEAN: LinkFate = LinkFate {
        dropped: false,
        duplicate: None,
        delay_factor: 1.0,
    };
}

/// Runtime state of the adversary: a [`FaultPlan`] plus the deterministic
/// stream driving its probabilistic rules.
///
/// The stream is seeded from `(host seed, plan fingerprint)` so that equal
/// `(plan, seed)` pairs replay identical fault sequences, while the host's
/// own generator (latency jitter, workloads) is never consumed by fault
/// decisions.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    /// Per-directed-pair index over `plan.drops`: `(from, to)` → the
    /// matching rules' `(window, prob)`. `on_send` runs once per message
    /// copy — the hottest fault-layer path — and with the index it walks
    /// only the rules that can apply to this link instead of every drop
    /// rule in the plan. Built once at construction; the fate stream is
    /// bit-identical to the full-scan version (same rules, same order,
    /// same draws).
    drop_index: crate::FxHashMap<(ProcessId, ProcessId), Vec<(FaultWindow, f64)>>,
}

impl FaultInjector {
    /// Builds the injector for `plan`, mixing `seed` into its private
    /// stream.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        let rng = SplitMix64::new(seed ^ plan.fingerprint() ^ 0xFA17_1A7E_D05E_ED5E);
        let mut drop_index: crate::FxHashMap<(ProcessId, ProcessId), Vec<(FaultWindow, f64)>> =
            crate::FxHashMap::default();
        for d in &plan.drops {
            drop_index
                .entry((d.from, d.to))
                .or_default()
                .push((d.window, d.prob));
        }
        FaultInjector {
            plan,
            rng,
            drop_index,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides the fate of one copy sent `from -> to` at `now`. Self-sends
    /// are never faulted. Draw order is fixed (drop, then duplication), so
    /// fates replay exactly for a given `(plan, seed)`.
    pub fn on_send(&mut self, from: ProcessId, to: ProcessId, now: SimTime) -> LinkFate {
        if from == to {
            return LinkFate::CLEAN;
        }
        // Partitions drop deterministically — no randomness consumed.
        for p in &self.plan.partitions {
            if p.window.contains(now)
                && p.side.binary_search(&from).is_ok() != p.side.binary_search(&to).is_ok()
            {
                return LinkFate {
                    dropped: true,
                    ..LinkFate::CLEAN
                };
            }
        }
        // Matching drop rules compound: survive all of them or vanish.
        let mut survive = 1.0f64;
        if let Some(rules) = self.drop_index.get(&(from, to)) {
            for (window, prob) in rules {
                if window.contains(now) {
                    survive *= 1.0 - prob.clamp(0.0, 1.0);
                }
            }
        }
        if survive < 1.0 && self.rng.next_f64() >= survive {
            return LinkFate {
                dropped: true,
                ..LinkFate::CLEAN
            };
        }
        let mut fate = LinkFate::CLEAN;
        for d in &self.plan.duplicates {
            if fate.duplicate.is_none() && d.window.contains(now) && self.rng.next_f64() < d.prob {
                fate.duplicate = Some(self.rng.next_f64());
            }
        }
        for s in &self.plan.spikes {
            if s.window.contains(now) {
                fate.delay_factor = fate.delay_factor.max(s.factor.max(1.0));
            }
        }
        fate
    }
}

/// A distribution over [`FaultPlan`]s: knobs bounding what
/// [`compile`](FaultConfig::compile) may generate. The scenario-fuzz
/// harness sweeps seeds through one config; every generated plan respects
/// the liveness preconditions of the paper's algorithms (each group keeps a
/// correct majority; every probabilistic rule's window closes by
/// [`fault_horizon`](Self::fault_horizon), after which links are clean and
/// retransmission converges).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Upper bound on scheduled crashes (further capped so every group
    /// keeps a strict majority of correct members).
    pub max_crashes: usize,
    /// Crashes are scheduled in `[0, crash_horizon)`.
    pub crash_horizon: Duration,
    /// Upper bound on lossy directed pairs.
    pub max_lossy_links: usize,
    /// Upper bound on each lossy pair's drop probability.
    pub max_drop_prob: f64,
    /// Upper bound on partition windows.
    pub max_partitions: usize,
    /// Upper bound on duplication rules.
    pub max_duplicate_rules: usize,
    /// Upper bound on each duplication rule's probability.
    pub max_dup_prob: f64,
    /// Upper bound on latency-spike rules.
    pub max_spikes: usize,
    /// Upper bound on a spike's delay multiplier.
    pub max_spike_factor: f64,
    /// Every probabilistic rule's window closes by this instant.
    pub fault_horizon: Duration,
}

impl Default for FaultConfig {
    /// The scenario-fuzz defaults: aggressive but liveness-preserving.
    fn default() -> Self {
        FaultConfig {
            max_crashes: 2,
            crash_horizon: Duration::from_millis(1500),
            max_lossy_links: 6,
            max_drop_prob: 0.8,
            max_partitions: 1,
            max_duplicate_rules: 2,
            max_dup_prob: 0.5,
            max_spikes: 2,
            max_spike_factor: 8.0,
            fault_horizon: Duration::from_secs(3),
        }
    }
}

impl FaultConfig {
    /// A config that generates only empty plans (useful as a control arm).
    pub fn quiet() -> Self {
        FaultConfig {
            max_crashes: 0,
            max_lossy_links: 0,
            max_partitions: 0,
            max_duplicate_rules: 0,
            max_spikes: 0,
            ..FaultConfig::default()
        }
    }

    /// Compiles a concrete [`FaultPlan`] for `topo` from `seed`,
    /// deterministically. Equal `(config, topo, seed)` triples yield equal
    /// plans (hence equal [`FaultPlan::fingerprint`]s).
    pub fn compile(&self, topo: &Topology, seed: u64) -> FaultPlan {
        let mut rng = SplitMix64::new(seed ^ 0x00C0_4F16_F022);
        let mut plan = FaultPlan::none();
        let horizon = SimTime::ZERO + self.fault_horizon;
        let n = topo.num_processes() as u64;

        // Crashes, respecting each group's strict correct majority: a group
        // of d members tolerates floor((d-1)/2) failures before consensus
        // (and hence delivery to that group) can no longer progress.
        let mut crashed_per_group = vec![0usize; topo.num_groups()];
        let budget = rng.next_below(self.max_crashes as u64 + 1) as usize;
        let mut scheduled = 0usize;
        let mut attempts = 0;
        while scheduled < budget && attempts < 16 {
            attempts += 1;
            let p = ProcessId(rng.next_below(n) as u32);
            let g = topo.group_of(p);
            let d = topo.members(g).len();
            let tolerance = (d - 1) / 2;
            if crashed_per_group[g.0 as usize] >= tolerance {
                continue;
            }
            if plan.crashes.iter().any(|&(_, q)| q == p) {
                continue;
            }
            crashed_per_group[g.0 as usize] += 1;
            scheduled += 1;
            let at = SimTime::from_nanos(rng.next_below(self.crash_horizon.as_nanos() as u64 + 1));
            plan = plan.with_crash(at, p);
        }

        // The windowed rules need at least one instant inside the horizon
        // and at least one link to fault; degenerate configs (zero
        // fault_horizon, single-process topology) just get crash-only
        // plans instead of panicking in `next_below`.
        if horizon == SimTime::ZERO || n < 2 {
            return plan;
        }
        let window = |rng: &mut SplitMix64| {
            let a = rng.next_below(horizon.as_nanos());
            let b = rng.next_below(horizon.as_nanos());
            FaultWindow::new(
                SimTime::from_nanos(a.min(b)),
                SimTime::from_nanos(a.max(b) + 1),
            )
        };

        for _ in 0..rng.next_below(self.max_lossy_links as u64 + 1) {
            let from = ProcessId(rng.next_below(n) as u32);
            let to = ProcessId(rng.next_below(n) as u32);
            if from == to {
                continue;
            }
            let prob = rng.next_f64() * self.max_drop_prob;
            let w = window(&mut rng);
            plan = plan.with_drop_during(from, to, prob, w.from, w.until);
        }

        for _ in 0..rng.next_below(self.max_partitions as u64 + 1) {
            // A non-empty strict subset of the processes.
            let size = 1 + rng.next_below(n - 1);
            let mut side: Vec<ProcessId> = topo.processes().collect();
            // Deterministic Fisher–Yates prefix selection.
            for i in 0..size as usize {
                let j = i + rng.next_below((side.len() - i) as u64) as usize;
                side.swap(i, j);
            }
            side.truncate(size as usize);
            let w = window(&mut rng);
            plan = plan.with_partition(&side, w.from, w.until);
        }

        for _ in 0..rng.next_below(self.max_duplicate_rules as u64 + 1) {
            let prob = rng.next_f64() * self.max_dup_prob;
            let w = window(&mut rng);
            plan = plan.with_duplication(prob, w.from, w.until);
        }

        for _ in 0..rng.next_below(self.max_spikes as u64 + 1) {
            let factor = 1.0 + rng.next_f64() * (self.max_spike_factor - 1.0).max(0.0);
            let w = window(&mut rng);
            plan = plan.with_latency_spike(factor, w.from, w.until);
        }

        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupId;

    #[test]
    fn none_is_none_and_fates_are_clean() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        let mut inj = FaultInjector::new(plan, 1);
        for t in 0..100 {
            let fate = inj.on_send(ProcessId(0), ProcessId(1), SimTime::from_millis(t));
            assert_eq!(fate, LinkFate::CLEAN);
        }
    }

    #[test]
    fn self_sends_are_never_faulted() {
        let plan = FaultPlan::none()
            .with_drop(ProcessId(0), ProcessId(0), 1.0)
            .with_partition(&[ProcessId(0)], SimTime::ZERO, SimTime::MAX);
        let mut inj = FaultInjector::new(plan, 2);
        let fate = inj.on_send(ProcessId(0), ProcessId(0), SimTime::ZERO);
        assert_eq!(fate, LinkFate::CLEAN);
    }

    #[test]
    fn certain_drop_window_drops_exactly_inside() {
        let plan = FaultPlan::none().with_drop_during(
            ProcessId(0),
            ProcessId(1),
            1.0,
            SimTime::from_millis(10),
            SimTime::from_millis(20),
        );
        let mut inj = FaultInjector::new(plan, 3);
        assert!(
            !inj.on_send(ProcessId(0), ProcessId(1), SimTime::from_millis(9))
                .dropped
        );
        assert!(
            inj.on_send(ProcessId(0), ProcessId(1), SimTime::from_millis(10))
                .dropped
        );
        assert!(
            inj.on_send(ProcessId(0), ProcessId(1), SimTime::from_millis(19))
                .dropped
        );
        assert!(
            !inj.on_send(ProcessId(0), ProcessId(1), SimTime::from_millis(20))
                .dropped
        );
        // The reverse direction is untouched.
        assert!(
            !inj.on_send(ProcessId(1), ProcessId(0), SimTime::from_millis(15))
                .dropped
        );
    }

    #[test]
    fn partition_cuts_both_directions_until_heal() {
        let heal = SimTime::from_millis(100);
        let plan =
            FaultPlan::none().with_partition(&[ProcessId(0), ProcessId(2)], SimTime::ZERO, heal);
        let mut inj = FaultInjector::new(plan, 4);
        let t = SimTime::from_millis(50);
        assert!(inj.on_send(ProcessId(0), ProcessId(1), t).dropped);
        assert!(inj.on_send(ProcessId(1), ProcessId(0), t).dropped);
        // Same side: flows.
        assert!(!inj.on_send(ProcessId(0), ProcessId(2), t).dropped);
        assert!(!inj.on_send(ProcessId(1), ProcessId(3), t).dropped);
        // Healed.
        assert!(!inj.on_send(ProcessId(0), ProcessId(1), heal).dropped);
    }

    #[test]
    fn duplication_and_spike_apply() {
        let plan = FaultPlan::none()
            .with_duplication(1.0, SimTime::ZERO, SimTime::MAX)
            .with_latency_spike(3.0, SimTime::ZERO, SimTime::MAX);
        let mut inj = FaultInjector::new(plan, 5);
        let fate = inj.on_send(ProcessId(0), ProcessId(1), SimTime::ZERO);
        assert!(!fate.dropped);
        let extra = fate.duplicate.expect("prob 1.0 must duplicate");
        assert!((0.0..1.0).contains(&extra));
        assert_eq!(fate.delay_factor, 3.0);
    }

    #[test]
    fn drop_probability_is_roughly_respected() {
        let plan = FaultPlan::none().with_drop(ProcessId(0), ProcessId(1), 0.3);
        let mut inj = FaultInjector::new(plan, 6);
        let dropped = (0..10_000)
            .filter(|_| {
                inj.on_send(ProcessId(0), ProcessId(1), SimTime::ZERO)
                    .dropped
            })
            .count();
        assert!((2_500..3_500).contains(&dropped), "{dropped}");
    }

    #[test]
    fn compound_drop_rules_multiply() {
        // Two 50% rules on the same pair => 75% loss.
        let plan = FaultPlan::none()
            .with_drop(ProcessId(0), ProcessId(1), 0.5)
            .with_drop(ProcessId(0), ProcessId(1), 0.5);
        let mut inj = FaultInjector::new(plan, 7);
        let dropped = (0..10_000)
            .filter(|_| {
                inj.on_send(ProcessId(0), ProcessId(1), SimTime::ZERO)
                    .dropped
            })
            .count();
        assert!((7_000..8_000).contains(&dropped), "{dropped}");
    }

    #[test]
    fn fates_replay_bit_for_bit() {
        let plan = FaultPlan::none()
            .with_drop(ProcessId(0), ProcessId(1), 0.4)
            .with_duplication(0.4, SimTime::ZERO, SimTime::MAX);
        let mut a = FaultInjector::new(plan.clone(), 9);
        let mut b = FaultInjector::new(plan, 9);
        for t in 0..1_000 {
            let now = SimTime::from_micros(t);
            assert_eq!(
                a.on_send(ProcessId(0), ProcessId(1), now),
                b.on_send(ProcessId(0), ProcessId(1), now)
            );
        }
    }

    #[test]
    fn fingerprint_distinguishes_plans() {
        let a = FaultPlan::none().with_crash(SimTime::from_millis(1), ProcessId(0));
        let b = FaultPlan::none().with_crash(SimTime::from_millis(2), ProcessId(0));
        let c = FaultPlan::none().with_crash(SimTime::from_millis(1), ProcessId(1));
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_ne!(FaultPlan::none().fingerprint(), a.fingerprint());
    }

    #[test]
    fn fault_horizon_reports_latest_window() {
        assert_eq!(FaultPlan::none().fault_horizon(), Some(SimTime::ZERO));
        let bounded = FaultPlan::none()
            .with_drop_during(
                ProcessId(0),
                ProcessId(1),
                1.0,
                SimTime::ZERO,
                SimTime::from_millis(5),
            )
            .with_duplication(0.5, SimTime::ZERO, SimTime::from_millis(9));
        assert_eq!(bounded.fault_horizon(), Some(SimTime::from_millis(9)));
        let unbounded = bounded.with_drop(ProcessId(0), ProcessId(2), 0.1);
        assert_eq!(unbounded.fault_horizon(), None);
        // Crashes do not bound the horizon: they are permanent by nature.
        let crash_only = FaultPlan::none().with_crash(SimTime::from_millis(50), ProcessId(0));
        assert_eq!(crash_only.fault_horizon(), Some(SimTime::ZERO));
    }

    #[test]
    fn compile_is_deterministic_and_respects_group_majorities() {
        let topo = Topology::symmetric(3, 3);
        let cfg = FaultConfig {
            max_crashes: 6,
            ..FaultConfig::default()
        };
        for seed in 0..200u64 {
            let plan = cfg.compile(&topo, seed);
            assert_eq!(plan, cfg.compile(&topo, seed), "deterministic");
            let mut per_group = [0usize; 3];
            for &(_, p) in &plan.crashes {
                per_group[topo.group_of(p).0 as usize] += 1;
            }
            for crashed in per_group {
                assert!(crashed <= 1, "3-member group tolerates 1 crash");
            }
            assert!(plan.fault_horizon().is_some(), "fuzz plans must be bounded");
        }
    }

    #[test]
    fn compile_never_crashes_in_two_member_groups() {
        // d = 2 => majority is 2 of 2: no crash is tolerable.
        let topo = Topology::symmetric(3, 2);
        let cfg = FaultConfig {
            max_crashes: 6,
            ..FaultConfig::default()
        };
        for seed in 0..100u64 {
            assert!(cfg.compile(&topo, seed).crashes.is_empty());
        }
    }

    #[test]
    fn compile_handles_degenerate_shapes_without_panicking() {
        // A single-process topology has no links; a zero fault horizon has
        // no instant for windowed rules. Both collapse to (at most
        // crash-only) plans instead of panicking in next_below.
        let solo = Topology::symmetric(1, 1);
        for seed in 0..50u64 {
            let plan = FaultConfig::default().compile(&solo, seed);
            assert!(plan.is_none(), "nothing to fault for one process");
        }
        let zero_horizon = FaultConfig {
            fault_horizon: Duration::ZERO,
            ..FaultConfig::default()
        };
        let topo = Topology::symmetric(2, 3);
        for seed in 0..50u64 {
            let plan = zero_horizon.compile(&topo, seed);
            assert!(plan.drops.is_empty() && plan.partitions.is_empty());
            assert!(plan.duplicates.is_empty() && plan.spikes.is_empty());
        }
    }

    #[test]
    fn quiet_config_compiles_empty_plans() {
        let topo = Topology::symmetric(2, 2);
        for seed in 0..20u64 {
            assert!(FaultConfig::quiet().compile(&topo, seed).is_none());
        }
    }

    #[test]
    fn group_of_sanity() {
        // Anchor for the majority math above.
        let topo = Topology::symmetric(2, 3);
        assert_eq!(topo.group_of(ProcessId(4)), GroupId(1));
        assert_eq!(topo.members(GroupId(0)).len(), 3);
    }
}
