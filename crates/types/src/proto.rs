//! The sans-io protocol abstraction.
//!
//! Every algorithm in this workspace — the paper's A1 and A2, their
//! substrates (consensus, reliable multicast) and all baselines — is written
//! as a pure state machine implementing [`Protocol`]. A host runtime (the
//! deterministic simulator in `wamcast-sim`, or the threaded in-process
//! cluster in `wamcast-net`) feeds it events and executes the [`Action`]s it
//! emits. Protocol code contains no I/O, no clocks, no threads and no
//! randomness, which gives us:
//!
//! * deterministic, replayable runs (property tests explore thousands of
//!   schedules);
//! * exact latency-degree measurement — the host stamps every send with the
//!   modified Lamport clock of §2.3 *outside* the protocol, so an algorithm
//!   cannot cheat;
//! * runtime independence (the same `Protocol` value runs under virtual or
//!   real time).
//!
//! Determinism contract: handlers must iterate internal collections in a
//! deterministic order (use `BTreeMap`/`BTreeSet` or sorted vectors, never
//! `HashMap` iteration) so that identical event sequences produce identical
//! action sequences.

use crate::{AppMessage, GroupId, MessageId, ProcessId, SimTime, Topology};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Coarse lifecycle classification of a protocol wire message, reported to
/// the trace layer via [`Protocol::describe_msg`]. The variants mirror the
/// paper's message kinds: reliable-multicast dissemination, the `(TS, m)`
/// timestamp exchange of A1/A2, and the three consensus phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgClass {
    /// Reliable-multicast dissemination (data or ack).
    Rmcast,
    /// A1/A2 timestamp exchange (`(TS, m)` announcements and nudges).
    Ts,
    /// Consensus proposal traffic (forward / prepare / promise).
    Propose,
    /// Consensus accept (phase-2a) traffic.
    Accept,
    /// Decision-carrying consensus traffic (phase-2b / learn).
    Decide,
    /// Anything the protocol does not classify further.
    Other,
}

/// A wire message described for tracing: what kind it is and which
/// application casts it carries or references. Returned by
/// [`Protocol::describe_msg`]; hosts turn each referenced cast into one
/// trace event, so a batch of `k` casts yields `k` attributable events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MsgInfo {
    /// Lifecycle class of the message.
    pub class: MsgClass,
    /// Cast ids the message carries or is about (possibly empty).
    pub casts: Vec<MessageId>,
}

impl MsgClass {
    /// The directional trace phase of a message of this class: what a
    /// host runtime records when such a message is sent (`sending`) or
    /// received. Shared by every runtime so the two trace vocabularies
    /// cannot drift.
    pub fn phase(self, sending: bool) -> wamcast_trace::Phase {
        use wamcast_trace::Phase;
        match (self, sending) {
            (MsgClass::Rmcast, true) => Phase::RmcastSend,
            (MsgClass::Rmcast, false) => Phase::RmcastRecv,
            (MsgClass::Ts, true) => Phase::TsSend,
            (MsgClass::Ts, false) => Phase::TsRecv,
            (MsgClass::Propose, true) => Phase::ProposeSend,
            (MsgClass::Propose, false) => Phase::ProposeRecv,
            (MsgClass::Accept, true) => Phase::AcceptSend,
            (MsgClass::Accept, false) => Phase::AcceptRecv,
            (MsgClass::Decide, true) => Phase::DecideSend,
            (MsgClass::Decide, false) => Phase::DecideRecv,
            (MsgClass::Other, true) => Phase::MsgSend,
            (MsgClass::Other, false) => Phase::MsgRecv,
        }
    }
}

impl MsgInfo {
    /// Describes a message of `class` referencing the given casts.
    pub fn new(class: MsgClass, casts: Vec<MessageId>) -> Self {
        MsgInfo { class, casts }
    }
}

/// A buffered side effect emitted by a protocol handler.
#[derive(Clone, Debug)]
pub enum Action<M> {
    /// Send `msg` to process `to`. All sends emitted by one handler
    /// invocation form a single *send event* for latency-degree stamping.
    Send {
        /// Destination process.
        to: ProcessId,
        /// Protocol message.
        msg: M,
    },
    /// Zero-copy fan-out: one logical message addressed to many processes.
    /// The body is stored **once** behind an `Arc`; hosts hand each
    /// destination a reference-counted handle instead of a deep copy
    /// ([`MsgSlot`]). Observationally this is exactly the sequence of
    /// [`Send`](Self::Send)s over `tos` in order — hosts stamp, sample
    /// latency and account each destination individually — so replacing a
    /// clone-per-destination loop with [`Outbox::send_many`] never changes
    /// a schedule, only its cost.
    SendMany {
        /// Destination processes, in send order.
        tos: Vec<ProcessId>,
        /// The shared message body.
        msg: Arc<M>,
    },
    /// A-Deliver `msg` to the application (a local event).
    Deliver(AppMessage),
    /// Arm a one-shot timer that fires `after` the current instant, carrying
    /// the protocol-chosen token `kind`.
    Timer {
        /// Delay until the timer fires.
        after: Duration,
        /// Opaque token returned to [`Protocol::on_timer`].
        kind: u64,
    },
}

/// How a host-queued message copy holds its body: owned (an ordinary
/// [`Action::Send`]) or shared (one destination of an
/// [`Action::SendMany`] fan-out).
///
/// Hosts store this in their event queues and call [`take`](Self::take)
/// at dispatch time. A shared copy whose siblings were already dispatched
/// (or dropped with a crashed destination) unwraps its `Arc` without
/// copying, so the *last* delivery of a fan-out — and every delivery of a
/// fan-out of one — is move-only.
#[derive(Debug)]
pub enum MsgSlot<M> {
    /// Exclusively owned body.
    Owned(M),
    /// Body shared with the other destinations of a fan-out.
    Shared(Arc<M>),
}

impl<M: Clone> MsgSlot<M> {
    /// Extracts the message, cloning only if other handles are still live.
    #[inline]
    pub fn take(self) -> M {
        match self {
            MsgSlot::Owned(m) => m,
            MsgSlot::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()),
        }
    }
}

impl<M: Clone> Clone for MsgSlot<M> {
    fn clone(&self) -> Self {
        match self {
            MsgSlot::Owned(m) => MsgSlot::Owned(m.clone()),
            MsgSlot::Shared(a) => MsgSlot::Shared(Arc::clone(a)),
        }
    }
}

/// Handler context: identity, environment, and an action buffer.
///
/// A fresh `Context` is passed to every handler invocation; the host drains
/// the buffered [`Action`]s when the handler returns.
#[derive(Debug)]
pub struct Context {
    id: ProcessId,
    group: GroupId,
    topology: Arc<Topology>,
    now: SimTime,
}

impl Context {
    /// Creates a context for process `id` at instant `now`. Called by host
    /// runtimes; protocol code only consumes contexts.
    pub fn new(id: ProcessId, topology: Arc<Topology>, now: SimTime) -> Self {
        let group = topology.group_of(id);
        Context {
            id,
            group,
            topology,
            now,
        }
    }

    /// This process's id.
    #[inline]
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// This process's group (`group(p)`).
    #[inline]
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// The static topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Current instant (virtual in the simulator, wall-clock offset in the
    /// threaded runtime). Protocols may log it but must not branch on it for
    /// correctness.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }
}

/// Action buffer filled by handlers.
///
/// Separated from [`Context`] so a handler can borrow the context immutably
/// (topology lookups) while pushing actions.
pub struct Outbox<M> {
    actions: Vec<Action<M>>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox {
            actions: Vec::new(),
        }
    }
}

impl<M> Outbox<M> {
    /// An empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// An outbox reusing `buf` as its backing storage (cleared first).
    /// Hosts pair this with [`into_buffer`](Self::into_buffer) to run one
    /// handler per event without allocating an action vector per step.
    pub fn with_buffer(mut buf: Vec<Action<M>>) -> Self {
        buf.clear();
        Outbox { actions: buf }
    }

    /// Consumes the outbox, returning the backing storage with all
    /// buffered actions still inside (counterpart of
    /// [`with_buffer`](Self::with_buffer)).
    pub fn into_buffer(self) -> Vec<Action<M>> {
        self.actions
    }

    /// Sends `msg` to `to`.
    #[inline]
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Sends one shared message to every process in `tos` without copying
    /// the body per destination ([`Action::SendMany`]). Equivalent — copy
    /// for copy, in order — to `send`ing a clone to each destination.
    pub fn send_many<I: IntoIterator<Item = ProcessId>>(&mut self, tos: I, msg: M) {
        let mut tos = tos.into_iter();
        let Some(first) = tos.next() else { return };
        let mut rest: Vec<ProcessId> = Vec::with_capacity(tos.size_hint().0 + 1);
        rest.push(first);
        rest.extend(tos);
        if rest.len() == 1 {
            // A fan-out of one is a plain send: no Arc allocation.
            self.send(rest[0], msg);
        } else {
            self.actions.push(Action::SendMany {
                tos: rest,
                msg: Arc::new(msg),
            });
        }
    }

    /// A-Delivers `msg` to the application.
    #[inline]
    pub fn deliver(&mut self, msg: AppMessage) {
        self.actions.push(Action::Deliver(msg));
    }

    /// Arms a one-shot timer.
    #[inline]
    pub fn set_timer(&mut self, after: Duration, kind: u64) {
        self.actions.push(Action::Timer { after, kind });
    }

    /// Buffers a pre-built action verbatim. Wrapper protocols (delivery
    /// interceptors, apply adapters) use this to relay inner actions —
    /// including [`Action::SendMany`], whose shared body must not be
    /// re-expanded into per-destination copies on the way through.
    #[inline]
    pub fn emit(&mut self, action: Action<M>) {
        self.actions.push(action);
    }

    /// Drains the buffered actions in emission order.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Action<M>> {
        self.actions.drain(..)
    }

    /// Number of buffered actions. A [`SendMany`](Action::SendMany)
    /// counts once however many destinations it fans out to.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether no actions are buffered.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

impl<M: fmt::Debug> fmt::Debug for Outbox<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Outbox")
            .field("actions", &self.actions)
            .finish()
    }
}

/// A sans-io protocol state machine.
///
/// One value of the implementing type runs per process. The host invokes the
/// handlers below; each invocation is one atomic step (the paper's "each
/// line of the algorithm is executed atomically" maps to handler atomicity).
pub trait Protocol {
    /// Wire message type exchanged between replicas of this protocol.
    /// `Sync` because fan-out copies are `Arc`-shared across host threads
    /// ([`Action::SendMany`]); protocol messages are plain data, so the
    /// bound is free.
    type Msg: Clone + fmt::Debug + Send + Sync + 'static;

    /// Invoked once before any other handler, at time 0.
    fn on_start(&mut self, ctx: &Context, out: &mut Outbox<Self::Msg>) {
        let _ = (ctx, out);
    }

    /// The application A-XCasts `msg` (A-MCast or A-BCast) at this process.
    /// Hosts guarantee `msg.id.origin == ctx.id()`.
    fn on_cast(&mut self, msg: AppMessage, ctx: &Context, out: &mut Outbox<Self::Msg>);

    /// A protocol message from `from` arrives (quasi-reliable links: no
    /// corruption, no duplication; delivered unless an endpoint crashed).
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &Context,
        out: &mut Outbox<Self::Msg>,
    );

    /// A timer armed via [`Outbox::set_timer`] fires.
    fn on_timer(&mut self, kind: u64, ctx: &Context, out: &mut Outbox<Self::Msg>) {
        let _ = (kind, ctx, out);
    }

    /// The host's failure-detector oracle reports that `crashed` has
    /// crashed. In the simulator this models an eventually perfect detector
    /// with configurable detection delay; `wamcast-net` drives it from
    /// heartbeat timeouts. Only ever invoked for processes that really
    /// crashed (accuracy), eventually invoked at every correct process for
    /// every crashed one (completeness).
    fn on_crash_notification(
        &mut self,
        crashed: ProcessId,
        ctx: &Context,
        out: &mut Outbox<Self::Msg>,
    ) {
        let _ = (crashed, ctx, out);
    }

    /// Classifies a wire message for the trace layer: its lifecycle class
    /// and the casts it references. Purely observational — hosts call it
    /// only when tracing is enabled, and it must not mutate anything (it
    /// takes no `&self`, so it cannot). The default declines to classify,
    /// which traces as generic send/recv events; wrapper protocols must
    /// forward to the wrapped protocol's implementation.
    fn describe_msg(msg: &Self::Msg) -> Option<MsgInfo> {
        let _ = msg;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GroupSet, MessageId, Payload};

    struct Echo;

    impl Protocol for Echo {
        type Msg = u32;

        fn on_cast(&mut self, msg: AppMessage, ctx: &Context, out: &mut Outbox<u32>) {
            // Echo protocols: deliver own casts immediately, ping group peers.
            let peers: Vec<_> = ctx
                .topology()
                .members(ctx.group())
                .iter()
                .copied()
                .filter(|&q| q != ctx.id())
                .collect();
            out.send_many(peers, 7);
            out.deliver(msg);
        }

        fn on_message(&mut self, _f: ProcessId, _m: u32, _ctx: &Context, _out: &mut Outbox<u32>) {}
    }

    #[test]
    fn context_accessors() {
        let topo = Arc::new(Topology::symmetric(2, 2));
        let ctx = Context::new(ProcessId(2), topo, SimTime::from_millis(5));
        assert_eq!(ctx.id(), ProcessId(2));
        assert_eq!(ctx.group(), GroupId(1));
        assert_eq!(ctx.now().as_millis(), 5);
        assert_eq!(ctx.topology().num_processes(), 4);
    }

    #[test]
    fn outbox_buffers_in_order() {
        let topo = Arc::new(Topology::symmetric(1, 3));
        let ctx = Context::new(ProcessId(0), topo, SimTime::ZERO);
        let mut out = Outbox::new();
        let m = AppMessage::new(
            MessageId::new(ProcessId(0), 0),
            GroupSet::singleton(GroupId(0)),
            Payload::new(),
        );
        Echo.on_cast(m.clone(), &ctx, &mut out);
        assert_eq!(out.len(), 2); // one shared fan-out + one deliver
        let acts: Vec<_> = out.drain().collect();
        assert!(matches!(
            &acts[0],
            Action::SendMany { tos, msg }
                if **msg == 7 && tos == &[ProcessId(1), ProcessId(2)]
        ));
        assert!(matches!(&acts[1], Action::Deliver(d) if d.id == m.id));
        assert!(out.is_empty());
    }

    #[test]
    fn send_many_degenerate_shapes() {
        let mut out = Outbox::<u32>::new();
        out.send_many([], 1); // empty fan-out: no action at all
        assert!(out.is_empty());
        out.send_many([ProcessId(4)], 2); // fan-out of one: plain send
        let acts: Vec<_> = out.drain().collect();
        assert!(matches!(acts[0], Action::Send { to, msg: 2 } if to == ProcessId(4)));
    }

    #[test]
    fn msg_slot_take_avoids_copy_when_unique() {
        let shared = Arc::new(vec![1u8, 2, 3]);
        let a = MsgSlot::Shared(Arc::clone(&shared));
        let b = MsgSlot::Shared(shared);
        assert_eq!(a.take(), vec![1, 2, 3]); // clones: sibling still live
        assert_eq!(b.take(), vec![1, 2, 3]); // last handle: moves out
        assert_eq!(MsgSlot::Owned(7u32).take(), 7);
        let c = MsgSlot::Shared(Arc::new(9u32));
        assert_eq!(c.clone().take(), 9);
    }

    #[test]
    fn outbox_buffer_reuse_roundtrip() {
        let mut out = Outbox::with_buffer(vec![Action::<u32>::Timer {
            after: Duration::ZERO,
            kind: 0,
        }]);
        assert!(out.is_empty(), "with_buffer clears stale actions");
        out.send(ProcessId(0), 5);
        out.emit(Action::Deliver(AppMessage::new(
            MessageId::new(ProcessId(0), 0),
            GroupSet::singleton(GroupId(0)),
            Payload::new(),
        )));
        let buf = out.into_buffer();
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn default_handlers_are_noops() {
        let topo = Arc::new(Topology::symmetric(1, 1));
        let ctx = Context::new(ProcessId(0), topo, SimTime::ZERO);
        let mut out = Outbox::<u32>::new();
        let mut e = Echo;
        e.on_start(&ctx, &mut out);
        e.on_timer(9, &ctx, &mut out);
        e.on_crash_notification(ProcessId(0), &ctx, &mut out);
        assert!(out.is_empty());
    }
}
