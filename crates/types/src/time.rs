//! Virtual time for the discrete-event simulator.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in virtual time, in nanoseconds since the start of a run.
///
/// The simulator advances `SimTime` only when it pops events off its queue,
/// so two runs with the same seed observe identical timelines. `SimTime` is
/// deliberately distinct from [`std::time::Instant`]: protocol code never
/// reads a clock, it only receives events stamped with virtual time.
///
/// # Example
///
/// ```
/// use wamcast_types::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_millis(100);
/// assert_eq!(t.as_millis(), 100);
/// assert!(t > SimTime::ZERO);
/// assert_eq!(t - SimTime::ZERO, Duration::from_millis(100));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// A time that compares greater than every reachable time; useful as a
    /// sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds a time from whole nanoseconds.
    #[inline]
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds a time from whole microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000))
    }

    /// Builds a time from whole milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000_000))
    }

    /// Nanoseconds since the origin.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the origin (truncating).
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the origin (truncating).
    #[inline]
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the origin as a float; handy for reports.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier` as a [`Duration`].
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.as_nanos() as u64))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self`; use
    /// [`saturating_since`](SimTime::saturating_since) when the ordering is
    /// not statically known.
    fn sub(self, rhs: SimTime) -> Duration {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction underflow");
        Duration::from_nanos(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}us", self.as_micros())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_nanos(7).as_nanos(), 7);
        assert_eq!(SimTime::from_millis(1500).as_millis(), 1500);
        assert!((SimTime::from_millis(500).as_secs_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + Duration::from_millis(10);
        let u = t + Duration::from_millis(5);
        assert_eq!(u - t, Duration::from_millis(5));
        assert_eq!(u.saturating_since(t), Duration::from_millis(5));
        assert_eq!(t.saturating_since(u), Duration::ZERO);
        let mut v = t;
        v += Duration::from_millis(1);
        assert_eq!(v.as_millis(), 11);
    }

    #[test]
    fn ordering_and_sentinels() {
        assert!(SimTime::ZERO < SimTime::MAX);
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn saturation_at_max() {
        let t = SimTime::MAX + Duration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn display_debug() {
        let t = SimTime::from_millis(12);
        assert_eq!(format!("{t}"), "12.000ms");
        assert_eq!(format!("{t:?}"), "t+12000us");
    }
}
