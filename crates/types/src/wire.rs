//! Dependency-free wire codec: the byte format protocol messages use to
//! cross process boundaries.
//!
//! Everything before this module ran in one address space — the simulator
//! hands `Arc<M>` around and the threaded runtime ships clones through mpsc
//! channels — so no message had ever been serialized. The TCP runtime in
//! `wamcast-net` needs real bytes, and the workspace builds offline with no
//! external dependencies, so the codec is hand-rolled: a tiny writer/reader
//! pair ([`WireWriter`] / [`WireReader`]), a [`Wire`] trait implemented by
//! every protocol message, and a versioned envelope ([`seal`] / [`open`])
//! that frames each datagram with `magic, version, arm-id` so peers reject
//! cross-version and cross-stack traffic instead of misparsing it.
//!
//! Design rules (see `DESIGN.md` §"Wire envelope"):
//!
//! * **Fixed-width little-endian integers.** No varints: messages are
//!   dominated by payload bytes, and fixed widths keep the golden corpus
//!   stable and the decoder branch-free.
//! * **Length-prefixed byte strings and sequences**, never delimiters —
//!   payloads are arbitrary bytes, so no sentinel is safe to reserve.
//! * **Every decode path returns [`WireError`]**; malformed input (truncated,
//!   trailing, hostile length claims) must never panic or over-allocate.
//!   Length claims are validated against the bytes actually remaining
//!   before any allocation happens.
//! * **Enums carry a leading tag byte**; unknown tags are errors, which is
//!   what makes the envelope version byte enforceable.
//!
//! # Example
//!
//! ```
//! use wamcast_types::wire::{open, seal, Wire, WireError};
//! use wamcast_types::{AppMessage, GroupSet, MessageId, Payload, ProcessId};
//!
//! let m = AppMessage::new(
//!     MessageId::new(ProcessId(3), 7),
//!     GroupSet::first_n(2),
//!     Payload::from(b"x=1".to_vec()),
//! );
//! // Raw codec round-trip.
//! assert_eq!(AppMessage::from_wire(&m.to_wire()).unwrap(), m);
//! // Envelope: arm id 4 must match on both sides.
//! let datagram = seal(4, &m);
//! assert_eq!(open::<AppMessage>(4, &datagram).unwrap(), m);
//! assert!(matches!(
//!     open::<AppMessage>(5, &datagram),
//!     Err(WireError::WrongArm { got: 4, want: 5 })
//! ));
//! ```

use crate::{AppMessage, GroupId, GroupSet, MessageId, Payload, ProcessId};
use std::fmt;
use std::sync::Arc;

/// First two bytes of every enveloped datagram.
pub const MAGIC: [u8; 2] = *b"WM";

/// Current wire-format version. Bump on any incompatible layout change;
/// the golden corpus test exists to make such changes loud.
pub const VERSION: u8 = 1;

/// Envelope length: magic (2) + version (1) + arm id (1).
pub const ENVELOPE_LEN: usize = 4;

/// Why a decode failed. Every malformed input maps here — never a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value it claimed to hold.
    Truncated,
    /// Decoding succeeded but this many bytes were left over.
    Trailing(usize),
    /// The first two bytes were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// The version byte did not match [`VERSION`]. There is no negotiation:
    /// a node speaks exactly one version and rejects everything else.
    BadVersion(u8),
    /// The envelope named a different protocol arm than this node hosts.
    WrongArm {
        /// Arm id carried by the datagram.
        got: u8,
        /// Arm id this node expected.
        want: u8,
    },
    /// An enum tag byte had no meaning for the named type.
    UnknownTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A length prefix claimed more bytes than the input holds — rejected
    /// before allocating anything.
    TooLong {
        /// Length the prefix claimed.
        claimed: u64,
        /// Bytes actually remaining.
        available: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after value"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::WrongArm { got, want } => {
                write!(f, "datagram for arm {got}, this node hosts arm {want}")
            }
            WireError::UnknownTag { what, tag } => {
                write!(f, "unknown tag {tag} while decoding {what}")
            }
            WireError::TooLong { claimed, available } => {
                write!(
                    f,
                    "length prefix claims {claimed} bytes, only {available} remain"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only byte sink the [`Wire`] encoders write into.
///
/// # Example
///
/// ```
/// use wamcast_types::wire::WireWriter;
/// let mut w = WireWriter::new();
/// w.u16(0x1234);
/// w.bytes(b"ab");
/// assert_eq!(w.finish(), vec![0x34, 0x12, 2, 0, 0, 0, b'a', b'b']);
/// ```
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        WireWriter { buf: Vec::new() }
    }

    /// An empty writer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        WireWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// A writer over a caller-owned buffer: clears `buf` (keeping its
    /// capacity) and appends into it. With [`Self::finish`] handing the
    /// buffer back, a hot loop encodes every frame into one allocation
    /// instead of one per frame — see [`seal_into`] for the pooled-envelope
    /// form. The encoding is byte-identical to a fresh writer's: clearing
    /// resets the length, and stale capacity is never observable.
    pub fn over(mut buf: Vec<u8>) -> Self {
        buf.clear();
        WireWriter { buf }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a bool as one byte, `0` or `1`.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a `u32` length prefix followed by the bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        debug_assert!(
            v.len() <= u32::MAX as usize,
            "byte string too long for wire"
        );
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends raw bytes with **no** length prefix (envelope header only).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over received bytes the [`Wire`] decoders read from.
///
/// All getters return [`WireError::Truncated`] instead of panicking when the
/// input runs dry, and length prefixes are checked against the remaining
/// bytes before any allocation.
///
/// # Example
///
/// ```
/// use wamcast_types::wire::{WireError, WireReader};
/// let mut r = WireReader::new(&[7, 0]);
/// assert_eq!(r.u16().unwrap(), 7);
/// assert_eq!(r.u8(), Err(WireError::Truncated));
/// ```
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a bool byte; anything other than `0`/`1` is an error.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::UnknownTag { what: "bool", tag }),
        }
    }

    /// Reads a `u32`-length-prefixed byte string, borrowing from the input.
    /// Hostile length claims fail with [`WireError::TooLong`] before any
    /// allocation.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(WireError::TooLong {
                claimed: n as u64,
                available: self.remaining(),
            });
        }
        self.take(n)
    }

    /// Reads a `u32` element count for a sequence, validated against the
    /// remaining bytes (every element occupies at least one byte, so a
    /// count exceeding `remaining` is provably hostile).
    pub fn seq_len(&mut self) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(WireError::TooLong {
                claimed: n as u64,
                available: self.remaining(),
            });
        }
        Ok(n)
    }

    /// Succeeds only if every input byte was consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::Trailing(self.buf.len()))
        }
    }
}

/// A value with a byte-level wire representation.
///
/// Implementations must be **total inverses**: `decode(encode(v)) == v` for
/// every value, and `decode` must map every malformed input to `Err` —
/// never panic, never allocate proportionally to a length claim the input
/// cannot back. The fuzz suite in `wamcast-harness` enforces both.
///
/// # Example
///
/// Implementing `Wire` for a two-field struct: encode fields in order,
/// decode them back in the same order (the `Vec`/`Option`/tuple impls
/// below compose the same way).
///
/// ```
/// use wamcast_types::wire::{Wire, WireError, WireReader, WireWriter};
///
/// #[derive(Debug, PartialEq)]
/// struct Ping { round: u64, urgent: bool }
///
/// impl Wire for Ping {
///     fn encode(&self, w: &mut WireWriter) {
///         w.u64(self.round);
///         w.bool(self.urgent);
///     }
///     fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
///         let round = r.u64()?;
///         let urgent = r.bool()?;
///         Ok(Ping { round, urgent })
///     }
/// }
///
/// let p = Ping { round: 7, urgent: true };
/// assert_eq!(Ping::from_wire(&p.to_wire()).unwrap(), p);
/// assert!(Ping::from_wire(&[0u8; 3]).is_err(), "truncated input is an Err");
/// ```
pub trait Wire: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut WireWriter);

    /// Decodes one value from the front of `r`.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Encodes into a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.finish()
    }

    /// Decodes from a buffer, requiring every byte to be consumed.
    fn from_wire(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

/// Wraps a message in the versioned envelope: `magic, version, arm-id, body`.
pub fn seal<M: Wire>(arm: u8, msg: &M) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(ENVELOPE_LEN + 16);
    w.raw(&MAGIC);
    w.u8(VERSION);
    w.u8(arm);
    msg.encode(&mut w);
    w.finish()
}

/// [`seal`] into a caller-owned buffer: clears `buf` (keeping its capacity)
/// and writes `magic, version, arm-id, body` into it. The bytes produced
/// are identical to `seal(arm, msg)` — same writer, same write sequence —
/// so a pooled buffer can replace a fresh allocation anywhere without
/// changing what goes on the wire; the differential fuzz suite pins this.
///
/// # Example
///
/// ```
/// use wamcast_types::wire::{seal, seal_into};
/// let mut buf = vec![0xAA; 64]; // dirty, oversized — contents don't leak
/// seal_into(4, &7u64, &mut buf);
/// assert_eq!(buf, seal(4, &7u64));
/// ```
pub fn seal_into<M: Wire>(arm: u8, msg: &M, buf: &mut Vec<u8>) {
    let mut w = WireWriter::over(std::mem::take(buf));
    w.raw(&MAGIC);
    w.u8(VERSION);
    w.u8(arm);
    msg.encode(&mut w);
    *buf = w.finish();
}

/// Validates the envelope header and returns the arm id, leaving the body
/// unread. Used by hosts that must dispatch before decoding.
pub fn peek_arm(bytes: &[u8]) -> Result<u8, WireError> {
    if bytes.len() < ENVELOPE_LEN {
        return Err(WireError::Truncated);
    }
    if bytes[..2] != MAGIC {
        return Err(WireError::BadMagic([bytes[0], bytes[1]]));
    }
    if bytes[2] != VERSION {
        return Err(WireError::BadVersion(bytes[2]));
    }
    Ok(bytes[3])
}

/// Opens an enveloped datagram: checks magic, version and arm id, then
/// decodes the body, requiring every byte to be consumed.
pub fn open<M: Wire>(want_arm: u8, bytes: &[u8]) -> Result<M, WireError> {
    let got = peek_arm(bytes)?;
    if got != want_arm {
        return Err(WireError::WrongArm {
            got,
            want: want_arm,
        });
    }
    M::from_wire(&bytes[ENVELOPE_LEN..])
}

impl Wire for u64 {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(*self);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u64()
    }
}

impl Wire for i64 {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(*self as u64);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(r.u64()? as i64)
    }
}

impl Wire for ProcessId {
    fn encode(&self, w: &mut WireWriter) {
        w.u32(self.0);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ProcessId(r.u32()?))
    }
}

impl Wire for GroupId {
    fn encode(&self, w: &mut WireWriter) {
        w.u16(self.0);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(GroupId(r.u16()?))
    }
}

/// Wire v1 carries destination sets as a `u64` mask: the format predates
/// the 128-group in-memory mask, and the golden corpus pins the 8-byte
/// layout. The TCP runtime therefore speaks ≤64-group topologies only —
/// the 65..128-group range is a simulator-scale feature (`scale_sweep`),
/// which never serializes destination sets.
impl Wire for GroupSet {
    fn encode(&self, w: &mut WireWriter) {
        assert!(
            self.bits() >> 64 == 0,
            "wire v1 encodes at most 64 groups; {self} does not fit (bump VERSION to widen)"
        );
        w.u64(self.bits() as u64);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(GroupSet::from_bits(r.u64()? as u128))
    }
}

impl Wire for MessageId {
    fn encode(&self, w: &mut WireWriter) {
        self.origin.encode(w);
        w.u64(self.seq);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let origin = ProcessId::decode(r)?;
        let seq = r.u64()?;
        Ok(MessageId { origin, seq })
    }
}

impl Wire for Payload {
    fn encode(&self, w: &mut WireWriter) {
        w.bytes(self.as_slice());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        // One copy, borrowed slice straight into the refcounted buffer —
        // `from(to_vec())` would copy twice (slice → Vec → Arc<[u8]>).
        Ok(Payload::copy_from_slice(r.bytes()?))
    }
}

impl Wire for AppMessage {
    fn encode(&self, w: &mut WireWriter) {
        self.id.encode(w);
        self.dest.encode(w);
        self.payload.encode(w);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let id = MessageId::decode(r)?;
        let dest = GroupSet::decode(r)?;
        let payload = Payload::decode(r)?;
        Ok(AppMessage { id, dest, payload })
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut WireWriter) {
        debug_assert!(
            self.len() <= u32::MAX as usize,
            "sequence too long for wire"
        );
        w.u32(self.len() as u32);
        for item in self {
            item.encode(w);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

// Lives here rather than in downstream crates: `Arc` is not a fundamental
// type, so the orphan rule forbids e.g. `wamcast-core` from implementing a
// foreign trait for `Arc<Vec<MsgEntry>>`. Covers `SharedBatch<T>`.
impl<T: Wire> Wire for Arc<T> {
    fn encode(&self, w: &mut WireWriter) {
        T::encode(self, w);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Arc::new(T::decode(r)?))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::UnknownTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let a = A::decode(r)?;
        let b = B::decode(r)?;
        Ok((a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_msg() -> AppMessage {
        AppMessage::new(
            MessageId::new(ProcessId(9), 41),
            GroupSet::from_iter([GroupId(0), GroupId(3)]),
            Payload::from(b"hello".to_vec()),
        )
    }

    #[test]
    fn primitive_roundtrips() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.bool(true);
        w.bytes(b"xyz");
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert!(r.bool().unwrap());
        assert_eq!(r.bytes().unwrap(), b"xyz");
        r.finish().unwrap();
    }

    #[test]
    fn message_roundtrip() {
        let m = sample_msg();
        assert_eq!(AppMessage::from_wire(&m.to_wire()).unwrap(), m);
    }

    #[test]
    fn container_roundtrips() {
        let v = vec![sample_msg(), sample_msg()];
        assert_eq!(Vec::<AppMessage>::from_wire(&v.to_wire()).unwrap(), v);
        let a = Arc::new(v);
        assert_eq!(Arc::<Vec<AppMessage>>::from_wire(&a.to_wire()).unwrap(), a);
        let some = Some(MessageId::new(ProcessId(1), 2));
        assert_eq!(
            Option::<MessageId>::from_wire(&some.to_wire()).unwrap(),
            some
        );
        let none: Option<MessageId> = None;
        assert_eq!(
            Option::<MessageId>::from_wire(&none.to_wire()).unwrap(),
            none
        );
    }

    #[test]
    fn truncation_is_an_error_at_every_prefix() {
        let bytes = sample_msg().to_wire();
        for cut in 0..bytes.len() {
            assert!(
                AppMessage::from_wire(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = sample_msg().to_wire();
        bytes.push(0);
        assert_eq!(AppMessage::from_wire(&bytes), Err(WireError::Trailing(1)));
    }

    #[test]
    fn hostile_length_claims_rejected_before_allocation() {
        // A Vec claiming u32::MAX elements backed by 4 bytes of input.
        let mut w = WireWriter::new();
        w.u32(u32::MAX);
        let bytes = w.finish();
        assert!(matches!(
            Vec::<AppMessage>::from_wire(&bytes),
            Err(WireError::TooLong { .. })
        ));
        // A byte string claiming more than remains.
        let mut w = WireWriter::new();
        w.u32(1000);
        w.raw(b"short");
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.bytes(), Err(WireError::TooLong { .. })));
    }

    #[test]
    fn envelope_round_trip_and_rejection() {
        let m = sample_msg();
        let dgram = seal(2, &m);
        assert_eq!(peek_arm(&dgram).unwrap(), 2);
        assert_eq!(open::<AppMessage>(2, &dgram).unwrap(), m);
        assert_eq!(
            open::<AppMessage>(1, &dgram),
            Err(WireError::WrongArm { got: 2, want: 1 })
        );

        let mut bad_magic = dgram.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            open::<AppMessage>(2, &bad_magic),
            Err(WireError::BadMagic(_))
        ));

        let mut bad_version = dgram.clone();
        bad_version[2] = VERSION + 1;
        assert_eq!(
            open::<AppMessage>(2, &bad_version),
            Err(WireError::BadVersion(VERSION + 1))
        );

        assert_eq!(peek_arm(&dgram[..3]), Err(WireError::Truncated));
    }

    #[test]
    fn seal_into_matches_seal_and_reuses_capacity() {
        let m = sample_msg();
        let fresh = seal(2, &m);
        // Dirty, oversized buffer: contents must not leak into the frame.
        let mut buf = vec![0xAA; 256];
        seal_into(2, &m, &mut buf);
        assert_eq!(buf, fresh);
        let cap = buf.capacity();
        seal_into(2, &m, &mut buf);
        assert_eq!(buf, fresh);
        assert_eq!(buf.capacity(), cap, "reuse must not reallocate");
        assert_eq!(open::<AppMessage>(2, &buf).unwrap(), m);
    }

    #[test]
    fn writer_over_clears_and_keeps_capacity() {
        let mut w = WireWriter::over(vec![1, 2, 3]);
        assert!(w.is_empty());
        w.u8(9);
        assert_eq!(w.finish(), vec![9]);
    }

    #[test]
    fn payload_decode_is_single_copy_equivalent() {
        let p = Payload::from(b"wire bytes".to_vec());
        let enc = p.to_wire();
        assert_eq!(Payload::from_wire(&enc).unwrap(), p);
        assert_eq!(Payload::copy_from_slice(b"wire bytes"), p);
    }

    #[test]
    fn bad_bool_and_option_tags() {
        let mut r = WireReader::new(&[9]);
        assert_eq!(
            r.bool(),
            Err(WireError::UnknownTag {
                what: "bool",
                tag: 9
            })
        );
        assert!(matches!(
            Option::<MessageId>::from_wire(&[7]),
            Err(WireError::UnknownTag { what: "Option", .. })
        ));
    }

    #[test]
    fn errors_display() {
        for e in [
            WireError::Truncated,
            WireError::Trailing(3),
            WireError::BadMagic([0, 1]),
            WireError::BadVersion(9),
            WireError::WrongArm { got: 1, want: 2 },
            WireError::UnknownTag {
                what: "x",
                tag: 255,
            },
            WireError::TooLong {
                claimed: 10,
                available: 1,
            },
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
