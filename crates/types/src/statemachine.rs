//! The replicated-state-machine consumer interface.
//!
//! Atomic multicast exists to order commands for a service; a
//! [`StateMachine`] is the service side of that contract. A host adapter
//! (`wamcast_core::WithApply`) feeds every `A-Deliver` to the machine *in
//! delivery order*, so two replicas addressed by the same messages run the
//! same apply sequence — the state-machine-replication reading of the §2.2
//! uniform properties. The trait lives here, next to [`Protocol`], so
//! protocol crates and application crates can meet without depending on
//! each other.
//!
//! [`Protocol`]: crate::Protocol

use crate::AppMessage;
use std::sync::{Arc, Mutex};

/// A deterministic application state machine fed by `A-Deliver` events.
///
/// Determinism contract: `apply` may depend only on the machine's current
/// state and the delivered message (id, destination set, payload). No
/// clocks, no randomness, no iteration over unordered containers — the
/// replicas of a group must end up byte-identical after the same delivery
/// sequence, which is exactly what per-shard digest comparison checks.
pub trait StateMachine {
    /// Consumes one A-Delivered message, in delivery order.
    fn apply(&mut self, msg: &AppMessage);
}

/// Shared handle: lets a harness keep inspection handles to the replicas it
/// hands to a runtime (threads in `wamcast-net`, moved-in protocol values in
/// the simulator) and read state/logs back out after the run.
impl<S: StateMachine> StateMachine for Arc<Mutex<S>> {
    fn apply(&mut self, msg: &AppMessage) {
        self.lock().expect("state machine poisoned").apply(msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GroupId, GroupSet, MessageId, Payload, ProcessId};

    struct Counter(u64);

    impl StateMachine for Counter {
        fn apply(&mut self, _msg: &AppMessage) {
            self.0 += 1;
        }
    }

    #[test]
    fn shared_handle_applies_through() {
        let mut shared = Arc::new(Mutex::new(Counter(0)));
        let m = AppMessage::new(
            MessageId::new(ProcessId(0), 0),
            GroupSet::singleton(GroupId(0)),
            Payload::new(),
        );
        shared.apply(&m);
        StateMachine::apply(&mut Arc::clone(&shared), &m);
        assert_eq!(shared.lock().unwrap().0, 2);
    }
}
