//! Core types shared by every crate in the `wamcast` workspace.
//!
//! This crate defines the vocabulary of the system model of Schiper & Pedone,
//! *Optimal Atomic Broadcast and Multicast Algorithms for Wide Area Networks*
//! (PODC 2007, §2):
//!
//! * [`ProcessId`] / [`GroupId`] — the system Π = {p₁, …, pₙ} partitioned
//!   into disjoint groups Γ = {g₁, …, gₘ};
//! * [`GroupSet`] — a destination set `m.dest ⊆ Γ` as a compact bitmask;
//! * [`Topology`] — the static group membership (who belongs where);
//! * [`MessageId`] and [`AppMessage`] — application messages with globally
//!   unique, totally ordered identifiers (the paper breaks timestamp ties by
//!   `m.id`);
//! * [`LatencyClock`] — the *modified Lamport clock* of §2.3 used to define
//!   the **latency degree** Δ(m, R): sends to a different group cost one
//!   tick, intra-group sends are free;
//! * [`SimTime`] — virtual time for the discrete-event simulator;
//! * [`BatchConfig`] — the consensus-amortization policy of the batching
//!   layer (how many messages pool before a consensus instance is spent on
//!   them); interpreted by the protocol cores in `wamcast-core`;
//! * [`FaultPlan`] / [`FaultConfig`] / [`FaultInjector`] — the deterministic
//!   fault-injection adversary (crash schedules, link loss, partitions,
//!   duplication, latency spikes) applied by both runtimes, see [`fault`];
//! * [`SplitMix64`] — the workspace's deterministic generator, shared by
//!   the simulator, the workload generators and the fault layer;
//! * [`StateMachine`] — the replicated-state-machine consumer interface:
//!   what a service (e.g. the partitioned KV store in `wamcast-smr`) exposes
//!   so a host can apply `A-Deliver` events to it in delivery order.
//!
//! # Example
//!
//! ```
//! use wamcast_types::{Topology, GroupSet, GroupId};
//!
//! // Three groups of two processes each.
//! let topo = Topology::symmetric(3, 2);
//! assert_eq!(topo.num_processes(), 6);
//! let dest: GroupSet = [GroupId(0), GroupId(2)].into_iter().collect();
//! assert_eq!(dest.len(), 2);
//! assert!(dest.contains(GroupId(2)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod clock;
mod error;
pub mod fault;
pub mod fxhash;
mod groupset;
mod ids;
mod message;
pub mod proto;
mod rng;
mod statemachine;
mod time;
mod topology;
pub mod wire;

pub use batch::BatchConfig;
pub use batch::SharedBatch;
pub use clock::{EventStamp, LatencyClock, LatencyDegree};
pub use error::TopologyError;
pub use fault::{FaultConfig, FaultInjector, FaultPlan, FaultWindow, LinkFate};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use groupset::GroupSet;
pub use ids::{GroupId, ProcessId};
pub use message::{AppMessage, MessageId, Payload};
pub use proto::{Action, Context, MsgClass, MsgInfo, MsgSlot, Outbox, Protocol};
pub use rng::SplitMix64;
pub use statemachine::StateMachine;
pub use time::SimTime;
pub use topology::{Topology, TopologyBuilder};
pub use wire::{Wire, WireError, WireReader, WireWriter};
