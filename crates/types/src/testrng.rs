//! Tiny deterministic generator for in-crate randomized unit tests.
//!
//! `wamcast-types` sits below `wamcast-sim` (which owns the workspace's
//! public [SplitMix64] generator), so its unit tests carry this minimal
//! copy of the same algorithm rather than depending upward.
//!
//! [SplitMix64]: https://doi.org/10.1145/2714064.2660195

pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}
