//! Application-level messages.

use crate::{GroupSet, ProcessId};
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Opaque application payload carried by a cast message.
///
/// A cheaply clonable, immutable byte buffer (reference-counted when owned),
/// so fanning one message out to many processes never copies the bytes. The
/// workspace builds offline with no external dependencies; this type covers
/// the slice of the `bytes::Bytes` API the protocols need.
///
/// # Example
///
/// ```
/// use wamcast_types::Payload;
///
/// let p = Payload::from_static(b"x=1");
/// assert_eq!(p.len(), 3);
/// assert_eq!(&p[..], b"x=1");
/// assert_eq!(p.clone(), Payload::from(b"x=1".to_vec()));
/// assert!(Payload::new().is_empty());
/// ```
#[derive(Clone)]
pub struct Payload(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Owned(Arc<[u8]>),
}

impl Payload {
    /// An empty payload.
    #[inline]
    pub const fn new() -> Self {
        Payload(Repr::Static(&[]))
    }

    /// A payload borrowing a `'static` byte string — zero allocation.
    #[inline]
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Payload(Repr::Static(bytes))
    }

    /// A payload copying `bytes` straight into its reference-counted
    /// buffer — exactly one allocation and one copy. `From<Vec<u8>>` on a
    /// borrowed slice would cost two (slice → `Vec`, `Vec` → `Arc<[u8]>`,
    /// whose lengths differ from the capacity in general); the wire
    /// decoder reads borrowed frame bytes, so this is its decode path.
    #[inline]
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Payload(Repr::Owned(Arc::from(bytes)))
    }

    /// The payload bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Owned(a) => a,
        }
    }

    /// Number of payload bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the payload is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::new()
    }
}

impl Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload(Repr::Owned(v.into()))
    }
}

impl From<&'static [u8]> for Payload {
    fn from(s: &'static [u8]) -> Self {
        Payload::from_static(s)
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl std::hash::Hash for Payload {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({}B)", self.len())
    }
}

/// Globally unique, totally ordered identifier of a cast message (`m.id`).
///
/// The paper's delivery rule breaks timestamp ties by message identifier:
/// `(m₁.ts, m₁.id) < (m₂.ts, m₂.id)` (§4.2). Identifiers are the pair
/// *(origin process, per-origin sequence number)* compared
/// lexicographically, so they are unique without coordination and the order
/// is total and agreed upon by everyone.
///
/// # Example
///
/// ```
/// use wamcast_types::{MessageId, ProcessId};
/// let a = MessageId::new(ProcessId(1), 0);
/// let b = MessageId::new(ProcessId(0), 9);
/// assert!(b < a); // origin id dominates
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId {
    /// The process that cast the message.
    pub origin: ProcessId,
    /// Per-origin sequence number, starting at 0.
    pub seq: u64,
}

impl MessageId {
    /// Builds the identifier of the `seq`-th message cast by `origin`.
    #[inline]
    pub fn new(origin: ProcessId, seq: u64) -> Self {
        MessageId { origin, seq }
    }

    /// The trace layer's raw key for this cast (`(caster, seq)` as plain
    /// integers — `wamcast-trace` is dependency-free and cannot name
    /// `MessageId` itself).
    #[inline]
    pub fn cast_key(self) -> wamcast_trace::CastKey {
        wamcast_trace::CastKey::new(self.origin.0, self.seq)
    }
}

impl fmt::Debug for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m({}#{})", self.origin, self.seq)
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An application message as cast by `A-MCast` / `A-BCast`.
///
/// Carries its identifier, destination group set (`m.dest`) and payload.
/// Protocol metadata (timestamp, stage, round, …) lives in the protocols'
/// own message types; `AppMessage` is what the application hands in and what
/// `A-Deliver` hands back.
///
/// # Example
///
/// ```
/// use wamcast_types::{AppMessage, GroupId, GroupSet, MessageId, Payload, ProcessId};
///
/// let m = AppMessage::new(
///     MessageId::new(ProcessId(0), 0),
///     GroupSet::from_iter([GroupId(0), GroupId(1)]),
///     Payload::from_static(b"update"),
/// );
/// assert_eq!(m.dest.len(), 2);
/// assert!(!m.is_single_group());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AppMessage {
    /// Unique identifier (`m.id`).
    pub id: MessageId,
    /// Destination groups (`m.dest`).
    pub dest: GroupSet,
    /// Opaque application payload.
    pub payload: Payload,
}

impl AppMessage {
    /// Creates a message.
    #[inline]
    pub fn new(id: MessageId, dest: GroupSet, payload: Payload) -> Self {
        AppMessage { id, dest, payload }
    }

    /// Whether `|m.dest| = 1`. Single-group messages take A1's fast path,
    /// skipping stages s1 and s2 entirely (§4.1).
    #[inline]
    pub fn is_single_group(&self) -> bool {
        self.dest.len() == 1
    }

    /// Payload size in bytes, the quantity [`BatchConfig::max_bytes`]
    /// accounts against when sizing consensus batches.
    ///
    /// [`BatchConfig::max_bytes`]: crate::BatchConfig::max_bytes
    #[inline]
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }
}

impl fmt::Debug for AppMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AppMessage{{{} -> {:?}, {}B}}",
            self.id,
            self.dest,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupId;

    #[test]
    fn id_lexicographic_order() {
        let a = MessageId::new(ProcessId(0), 5);
        let b = MessageId::new(ProcessId(0), 6);
        let c = MessageId::new(ProcessId(1), 0);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn single_group_detection() {
        let one = AppMessage::new(
            MessageId::new(ProcessId(0), 0),
            GroupSet::singleton(GroupId(2)),
            Payload::new(),
        );
        assert!(one.is_single_group());
        let two = AppMessage::new(
            MessageId::new(ProcessId(0), 1),
            GroupSet::from_iter([GroupId(0), GroupId(1)]),
            Payload::new(),
        );
        assert!(!two.is_single_group());
    }

    #[test]
    fn debug_renders() {
        let m = AppMessage::new(
            MessageId::new(ProcessId(3), 7),
            GroupSet::singleton(GroupId(0)),
            Payload::from_static(b"xy"),
        );
        let s = format!("{m:?}");
        assert!(s.contains("p3"), "{s}");
        assert!(s.contains("2B"), "{s}");
        assert_eq!(format!("{}", m.id), "m(p3#7)");
    }

    #[test]
    fn payload_equality_spans_representations() {
        let a = Payload::from_static(b"abc");
        let b = Payload::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(&b[1..], b"bc");
    }
}
