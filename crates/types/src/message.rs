//! Application-level messages.

use crate::{GroupSet, ProcessId};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque application payload carried by a cast message.
pub type Payload = Bytes;

/// Globally unique, totally ordered identifier of a cast message (`m.id`).
///
/// The paper's delivery rule breaks timestamp ties by message identifier:
/// `(m₁.ts, m₁.id) < (m₂.ts, m₂.id)` (§4.2). Identifiers are the pair
/// *(origin process, per-origin sequence number)* compared
/// lexicographically, so they are unique without coordination and the order
/// is total and agreed upon by everyone.
///
/// # Example
///
/// ```
/// use wamcast_types::{MessageId, ProcessId};
/// let a = MessageId::new(ProcessId(1), 0);
/// let b = MessageId::new(ProcessId(0), 9);
/// assert!(b < a); // origin id dominates
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId {
    /// The process that cast the message.
    pub origin: ProcessId,
    /// Per-origin sequence number, starting at 0.
    pub seq: u64,
}

impl MessageId {
    /// Builds the identifier of the `seq`-th message cast by `origin`.
    #[inline]
    pub fn new(origin: ProcessId, seq: u64) -> Self {
        MessageId { origin, seq }
    }
}

impl fmt::Debug for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m({}#{})", self.origin, self.seq)
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An application message as cast by `A-MCast` / `A-BCast`.
///
/// Carries its identifier, destination group set (`m.dest`) and payload.
/// Protocol metadata (timestamp, stage, round, …) lives in the protocols'
/// own message types; `AppMessage` is what the application hands in and what
/// `A-Deliver` hands back.
///
/// # Example
///
/// ```
/// use wamcast_types::{AppMessage, GroupId, GroupSet, MessageId, ProcessId};
///
/// let m = AppMessage::new(
///     MessageId::new(ProcessId(0), 0),
///     GroupSet::from_iter([GroupId(0), GroupId(1)]),
///     bytes::Bytes::from_static(b"update"),
/// );
/// assert_eq!(m.dest.len(), 2);
/// assert!(!m.is_single_group());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AppMessage {
    /// Unique identifier (`m.id`).
    pub id: MessageId,
    /// Destination groups (`m.dest`).
    pub dest: GroupSet,
    /// Opaque application payload.
    #[serde(with = "serde_bytes_compat")]
    pub payload: Payload,
}

impl AppMessage {
    /// Creates a message.
    #[inline]
    pub fn new(id: MessageId, dest: GroupSet, payload: Payload) -> Self {
        AppMessage { id, dest, payload }
    }

    /// Whether `|m.dest| = 1`. Single-group messages take A1's fast path,
    /// skipping stages s1 and s2 entirely (§4.1).
    #[inline]
    pub fn is_single_group(&self) -> bool {
        self.dest.len() == 1
    }
}

impl fmt::Debug for AppMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AppMessage{{{} -> {:?}, {}B}}",
            self.id,
            self.dest,
            self.payload.len()
        )
    }
}

/// Serde adapter: `bytes::Bytes` as a byte sequence.
mod serde_bytes_compat {
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(b: &Bytes, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bytes(b)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Bytes, D::Error> {
        let v = Vec::<u8>::deserialize(d)?;
        Ok(Bytes::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupId;

    #[test]
    fn id_lexicographic_order() {
        let a = MessageId::new(ProcessId(0), 5);
        let b = MessageId::new(ProcessId(0), 6);
        let c = MessageId::new(ProcessId(1), 0);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn single_group_detection() {
        let one = AppMessage::new(
            MessageId::new(ProcessId(0), 0),
            GroupSet::singleton(GroupId(2)),
            Payload::new(),
        );
        assert!(one.is_single_group());
        let two = AppMessage::new(
            MessageId::new(ProcessId(0), 1),
            GroupSet::from_iter([GroupId(0), GroupId(1)]),
            Payload::new(),
        );
        assert!(!two.is_single_group());
    }

    #[test]
    fn debug_renders() {
        let m = AppMessage::new(
            MessageId::new(ProcessId(3), 7),
            GroupSet::singleton(GroupId(0)),
            Payload::from_static(b"xy"),
        );
        let s = format!("{m:?}");
        assert!(s.contains("p3"), "{s}");
        assert!(s.contains("2B"), "{s}");
        assert_eq!(format!("{}", m.id), "m(p3#7)");
    }
}
