//! Deterministic pseudo-random numbers for the workspace.
//!
//! The workspace implements its own tiny generator instead of using the
//! `rand` crate so that schedules are bit-for-bit reproducible across `rand`
//! version bumps; a simulation run is identified by `(topology, config,
//! workload, seed)` alone. The generator lives in `wamcast-types` (the root
//! of the dependency graph) because both runtimes consume it: the
//! discrete-event simulator (`wamcast-sim`) for latency jitter and workload
//! generation, and the threaded runtime (`wamcast-net`) for its lossy-link
//! adversary. `wamcast-sim` re-exports it, so `wamcast_sim::SplitMix64`
//! remains a valid path.

/// SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny, statistically
/// solid, splittable generator. One instance drives all stochastic choices
/// of a simulation run (link-latency jitter, workload generation); the
/// fault-injection layer forks an independent stream with [`split`] so that
/// fault decisions never perturb the main schedule stream.
///
/// [`split`]: SplitMix64::split
///
/// # Example
///
/// ```
/// use wamcast_types::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed ⇒ same stream
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// reduction (bias is negligible for simulation purposes).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Forks an independent generator (the "split" in SplitMix).
    #[inline]
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let va: Vec<_> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<_> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn reference_vector() {
        // First outputs for seed 0, from the published SplitMix64 reference.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn bounded_outputs_stay_in_bounds() {
        let mut g = SplitMix64::new(99);
        for _ in 0..1000 {
            assert!(g.next_below(10) < 10);
            let v = g.next_range(5, 9);
            assert!((5..=9).contains(&v));
            let f = g.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(g.next_range(3, 3), 3);
    }

    #[test]
    fn bounded_outputs_cover_range() {
        let mut g = SplitMix64::new(1234);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[g.next_below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn split_decorrelates() {
        let mut g = SplitMix64::new(5);
        let mut h = g.split();
        assert_ne!(g.next_u64(), h.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
