//! The modified Lamport clock of §2.3, used to measure **latency degree**.
//!
//! The paper captures the cost of a broadcast/multicast algorithm as the
//! number of *inter-group* message delays on the causal path between the
//! cast of a message and its last delivery. Events are timestamped with a
//! variant of Lamport's logical clock where only inter-group sends tick:
//!
//! 1. a local event is stamped with the current clock `LCₚ`;
//! 2. a send event is stamped `LCₚ + 1` when the destination is in a
//!    different group, `LCₚ` otherwise;
//! 3. a receive event is stamped `max(LCₚ, ts(send(m)))`.
//!
//! The latency degree of message `m` in run `R` is
//! `Δ(m, R) = max_{q ∈ Π′(m)} (ts(A-Deliver(m)_q) − ts(A-XCast(m)_p))`.
//!
//! The simulator owns one [`LatencyClock`] per process and drives it; protocol
//! code never sees these stamps, which is what makes the measurement honest.

/// Measured latency degree of a message: the Δ(m, R) of §2.3.
pub type LatencyDegree = u64;

/// Timestamps to apply to the copies of one send *event*.
///
/// The paper stamps one send event per logical message even when the message
/// is sent to a set of destinations (e.g. A2's line 15 sends a round bundle
/// to every process outside the sender's group). All intra-group copies of
/// the event share [`intra`](Self::intra) and all inter-group copies share
/// [`inter`](Self::inter) = `intra + 1`; counting each physical copy as its
/// own tick would wrongly charge a k-destination multicast k inter-group
/// delays instead of one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventStamp {
    /// Stamp for copies delivered inside the sender's group.
    pub intra: u64,
    /// Stamp for copies crossing a group boundary (`intra + 1`).
    pub inter: u64,
}

/// Per-process modified Lamport clock (§2.3).
///
/// # Example
///
/// ```
/// use wamcast_types::LatencyClock;
///
/// let mut clock = LatencyClock::new();
/// assert_eq!(clock.value(), 0);
///
/// // Handler sends one logical message across groups: one tick.
/// let stamp = clock.finish_step(true);
/// assert_eq!(stamp.inter, 1);
/// assert_eq!(clock.value(), 1);
///
/// // The receiving process merges the sender's stamp.
/// let mut receiver = LatencyClock::new();
/// receiver.observe_receive(stamp.inter);
/// assert_eq!(receiver.value(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyClock {
    lc: u64,
}

impl LatencyClock {
    /// A clock at 0 (every `LCₚ` is initialized to 0; §2.3).
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current clock value; this is the stamp of a local event (rule 1),
    /// including `A-XCast` and `A-Deliver` events.
    #[inline]
    pub fn value(&self) -> u64 {
        self.lc
    }

    /// Applies rule 3 for a received message whose send event was stamped
    /// `stamp`: `LCₚ ← max(LCₚ, stamp)`.
    #[inline]
    pub fn observe_receive(&mut self, stamp: u64) {
        self.lc = self.lc.max(stamp);
    }

    /// Closes one handler invocation ("step") that emitted send actions.
    ///
    /// Returns the [`EventStamp`] for the step's outgoing copies and, when
    /// `any_inter_send` is true, advances the clock by one tick (rule 2). All
    /// sends emitted by one step are treated as a single send event — see
    /// [`EventStamp`] for why.
    #[inline]
    pub fn finish_step(&mut self, any_inter_send: bool) -> EventStamp {
        let base = self.lc;
        let stamp = EventStamp {
            intra: base,
            inter: base + 1,
        };
        if any_inter_send {
            self.lc = stamp.inter;
        }
        stamp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(LatencyClock::new().value(), 0);
        assert_eq!(LatencyClock::default().value(), 0);
    }

    #[test]
    fn intra_group_sends_are_free() {
        let mut c = LatencyClock::new();
        let s = c.finish_step(false);
        assert_eq!(s.intra, 0);
        assert_eq!(c.value(), 0, "intra-group traffic must not tick");
        // Many steps of pure local/intra activity never move the clock.
        for _ in 0..100 {
            c.finish_step(false);
        }
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn inter_group_send_ticks_once_per_step() {
        let mut c = LatencyClock::new();
        let s = c.finish_step(true);
        assert_eq!(s.inter, 1);
        assert_eq!(c.value(), 1);
        // A second step with inter-group sends ticks again.
        let s2 = c.finish_step(true);
        assert_eq!(s2.inter, 2);
        assert_eq!(c.value(), 2);
    }

    #[test]
    fn receive_takes_max() {
        let mut c = LatencyClock::new();
        c.observe_receive(5);
        assert_eq!(c.value(), 5);
        c.observe_receive(3);
        assert_eq!(c.value(), 5, "receive never rewinds the clock");
        c.observe_receive(5);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn theorem_5_1_arithmetic() {
        // Reproduce the clock arithmetic of Theorem 5.1's run: two groups
        // exchange round bundles once; delivery lands exactly one tick after
        // the cast.
        let mut p = LatencyClock::new(); // p ∈ g1, the caster
        let mut q = LatencyClock::new(); // q ∈ g2
        let cast_ts = p.value(); // A-BCast is a local event
        assert_eq!(cast_ts, 0);
        // Both groups decide locally, then exchange bundles (one step each).
        let p_bundle = p.finish_step(true);
        let q_bundle = q.finish_step(true);
        // Each side receives the other's bundle and A-Delivers.
        p.observe_receive(q_bundle.inter);
        q.observe_receive(p_bundle.inter);
        assert_eq!(p.value() - cast_ts, 1);
        assert_eq!(q.value() - cast_ts, 1);
    }

    #[test]
    fn theorem_4_1_arithmetic() {
        // Two groups g1, g2; p1 ∈ g1 multicasts to both. R-MCast crosses the
        // boundary (tick 1); each group's TS exchange crosses back (tick 2).
        let mut p1 = LatencyClock::new();
        let cast_ts = p1.value();
        let rmcast = p1.finish_step(true); // R-MCast reaches g2
        assert_eq!(rmcast.inter, 1);
        let mut q = LatencyClock::new(); // q ∈ g2
        q.observe_receive(rmcast.inter); // q now at 1
        let q_ts_msg = q.finish_step(true); // g2's (TS, m) to g1
        assert_eq!(q_ts_msg.inter, 2);
        // p1's own TS send (to g2) also ticks, then it receives g2's.
        p1.finish_step(true);
        p1.observe_receive(q_ts_msg.inter);
        assert_eq!(p1.value() - cast_ts, 2);
        assert_eq!(q.value(), 2, "g2 delivers at 2 after its own TS send");
    }

    #[test]
    fn batched_sends_share_one_tick() {
        // One handler sending to 10 remote processes must cost one delay,
        // not ten.
        let mut c = LatencyClock::new();
        let stamp = c.finish_step(true);
        for _copy in 0..10 {
            assert_eq!(stamp.inter, 1);
        }
        assert_eq!(c.value(), 1);
    }
}
