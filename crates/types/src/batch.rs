//! Consensus-amortizing batching configuration.
//!
//! Both of the paper's algorithms pay one intra-group consensus instance per
//! ordering step. Under heavy traffic the per-instance cost (two intra-group
//! delays, `O(d²)` messages) dominates, so the standard scaling lever is to
//! decide *batches* of application messages per instance — the Multi-Paxos
//! batching argument, applied to A1's `msgSet` proposals and A2's round
//! bundles. [`BatchConfig`] is the knob shared by `wamcast-core`'s protocol
//! implementations; see `DESIGN.md` §"Batching layer" for how each algorithm
//! interprets it and why ordering invariants and latency degrees are
//! unaffected.

use std::time::Duration;

/// A shared, immutable batch body: the unit a consensus instance decides
/// and a fan-out ships. Cloning bumps a reference count, so a 64-message
/// batch riding an intra-group `Accept`/`Accepted`/`Decide` broadcast or
/// an inter-group `(TS, batch)` exchange is stored **once** however many
/// processes it reaches. Mutation (sorting a decided bundle, folding a
/// forwarded proposal in via a merge combiner) goes through
/// [`std::sync::Arc::make_mut`], which copies only when another handle is
/// still live — exactly the copy the pre-`Arc` representation paid on
/// every clone.
///
/// Used as `SharedBatch<MsgEntry>` by Algorithm A1's `msgSet` proposals
/// and `SharedBatch<AppMessage>` by Algorithm A2's round bundles.
pub type SharedBatch<T> = std::sync::Arc<Vec<T>>;

/// Batch-accumulation policy for consensus-amortized protocols.
///
/// A protocol accumulates freshly disseminated messages instead of proposing
/// each one to consensus immediately, and flushes the accumulated batch when
/// the **first** of three triggers fires:
///
/// * [`max_msgs`](Self::max_msgs) messages are waiting,
/// * their payloads total at least [`max_bytes`](Self::max_bytes), or
/// * [`max_delay`](Self::max_delay) has elapsed since the batch started
///   (enforced with a one-shot flush timer, so a batch never waits forever).
///
/// Batching is a scheduling choice: it changes *when* messages are
/// proposed to consensus, and therefore which instance timestamps them —
/// so a batched run may order two concurrent messages differently than an
/// unbatched run would have, exactly as any other scheduling change may.
/// What it preserves is every guarantee the §2.2 specification actually
/// makes: within a run, all destinations deliver common messages in the
/// same order (uniform agreement, pairwise total order, genuineness), and
/// the paper's latency-degree results are unchanged (timers are local
/// events and cost zero latency degree).
/// Wall-clock latency, however, trades against throughput: larger batches
/// amortize consensus over more messages at the cost of up to `max_delay`
/// extra queueing delay.
///
/// The [`Default`] value is [`BatchConfig::disabled`], which reproduces the
/// paper's eager per-arrival proposals exactly.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use wamcast_types::BatchConfig;
///
/// // Eager (the paper's schedule): every trigger fires immediately.
/// let eager = BatchConfig::default();
/// assert!(eager.is_disabled());
/// assert!(eager.should_flush(1, 0));
///
/// // Amortized: up to 64 messages or 64 KiB per consensus instance, and a
/// // 20 ms cap on the extra queueing delay.
/// let batch = BatchConfig::new(64)
///     .with_max_bytes(64 * 1024)
///     .with_max_delay(Duration::from_millis(20));
/// assert!(!batch.is_disabled());
/// assert!(!batch.should_flush(63, 100));   // keep accumulating
/// assert!(batch.should_flush(64, 100));    // size trigger
/// assert!(batch.should_flush(2, 70_000));  // byte trigger
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchConfig {
    /// Flush as soon as this many messages are accumulated. `1` disables
    /// accumulation (every message flushes its own batch).
    pub max_msgs: usize,
    /// Flush as soon as the accumulated payload bytes reach this bound.
    pub max_bytes: usize,
    /// Flush at the latest this long after the first message of the batch
    /// arrived. The window is what makes pooling safe to wait on, so
    /// [`Duration::ZERO`] means *no window*: protocols flush eagerly (a
    /// size-only policy with no time bound could hold a sub-threshold pool
    /// forever, blocking delivery). Set a non-zero delay to batch.
    pub max_delay: Duration,
}

impl BatchConfig {
    /// No batching: propose every message immediately, exactly as the
    /// paper's Algorithms A1/A2 are written.
    pub const fn disabled() -> Self {
        BatchConfig {
            max_msgs: 1,
            max_bytes: usize::MAX,
            max_delay: Duration::ZERO,
        }
    }

    /// Batch up to `max_msgs` messages per consensus instance, with no byte
    /// bound and no delay bound (callers almost always want to add
    /// [`with_max_delay`](Self::with_max_delay) so low-rate traffic is not
    /// stalled waiting for a full batch).
    pub const fn new(max_msgs: usize) -> Self {
        BatchConfig {
            max_msgs,
            max_bytes: usize::MAX,
            max_delay: Duration::ZERO,
        }
    }

    /// Replaces the byte bound.
    #[must_use]
    pub const fn with_max_bytes(mut self, max_bytes: usize) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// Replaces the delay bound.
    #[must_use]
    pub const fn with_max_delay(mut self, max_delay: Duration) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Whether this configuration reproduces the eager (unbatched)
    /// schedule: either every message is its own batch, or there is no
    /// flush window to wait on (see [`max_delay`](Self::max_delay)).
    pub fn is_disabled(&self) -> bool {
        self.max_msgs <= 1 || self.max_delay.is_zero()
    }

    /// Whether a batch of `msgs` messages totalling `bytes` payload bytes
    /// must flush *now* (size or byte trigger). The delay trigger is the
    /// host timer's job: protocols arm a one-shot timer for
    /// [`max_delay`](Self::max_delay) when a batch opens.
    pub fn should_flush(&self, msgs: usize, bytes: usize) -> bool {
        msgs >= self.max_msgs || bytes >= self.max_bytes
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_flushes_every_message() {
        let b = BatchConfig::disabled();
        assert!(b.is_disabled());
        assert!(b.should_flush(1, 0));
        assert_eq!(BatchConfig::default(), b);
    }

    #[test]
    fn triggers_are_first_wins() {
        let b = BatchConfig::new(4).with_max_bytes(100);
        assert!(!b.should_flush(3, 99));
        assert!(b.should_flush(4, 0), "size trigger");
        assert!(b.should_flush(1, 100), "byte trigger");
    }

    #[test]
    fn degenerate_policies_are_disabled() {
        // max_msgs = 1: every message flushes its own batch.
        let b = BatchConfig::new(1).with_max_delay(Duration::from_millis(5));
        assert!(b.is_disabled());
        // No flush window: a sub-threshold pool could wait forever, so
        // size-only policies degrade to eager.
        let b = BatchConfig::new(64);
        assert!(b.is_disabled());
        assert!(!BatchConfig::new(64)
            .with_max_delay(Duration::from_millis(5))
            .is_disabled());
    }
}
