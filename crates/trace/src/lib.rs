//! Deterministic causal tracing for the wamcast runtimes: per-cast
//! lifecycle events, a bounded flight recorder, and export formats.
//!
//! The repository's hard observability contract (PR 7's metrics layer set
//! it; this crate inherits it) is that **recording must never perturb a
//! schedule**: a run with tracing enabled executes the byte-identical
//! event sequence of the same run with tracing disabled. This crate holds
//! up its end by construction — nothing here reads a clock, draws
//! randomness, spawns a thread or touches I/O. An event's timestamp is
//! whatever the *host* runtime already computed for its own schedule (the
//! simulator's virtual clock, the TCP event loop's elapsed wall time), so
//! pushing an event is a pure data-structure append.
//!
//! # Model
//!
//! A [`TraceEvent`] names one lifecycle step of one cast message,
//! identified by its [`CastKey`] `(caster, seq)` — the same `(origin,
//! seq)` pair `wamcast_types::MessageId` is built from, kept as raw
//! integers here so this crate depends on nothing. The [`Phase`] vocabulary
//! spans the full Algorithm A1/A2 lifecycle: cast → reliable-multicast
//! send/receive → timestamp exchange → consensus propose/accept/decide →
//! deliver → SMR apply, plus crash bookkeeping and a generic protocol-send
//! fallback for arms that do not classify their wire messages.
//!
//! Events accumulate in a [`TraceRing`]: a bounded ring buffer (the
//! *flight recorder*) that evicts oldest-first, so a long-lived node holds
//! the most recent window of its own history at a fixed memory cost —
//! exactly what a post-mortem after a `kill -9` wants.
//!
//! # Export
//!
//! * [`TraceRing::dump`] / [`render_events`] — the line-oriented text
//!   format (one event per line, stable vocabulary) that travels over the
//!   control plane and is pasted into failure artifacts;
//! * [`chrome_trace`] — Chrome `trace_event` JSON (open in
//!   `chrome://tracing` or Perfetto);
//! * [`narrative`] — the violation-forensics view: one cast's events as a
//!   minimal ordered story;
//! * [`validate_json`] — a dependency-free JSON syntax checker so tests
//!   and CI can assert the Chrome export parses without a JSON library.

use std::collections::VecDeque;
use std::fmt::Write as _;

/// The cast a trace event is about: `(caster process, per-caster seq)` —
/// the raw form of `wamcast_types::MessageId`, kept dependency-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CastKey {
    /// Index of the process that cast the message.
    pub caster: u32,
    /// The caster's per-origin sequence number.
    pub seq: u64,
}

impl CastKey {
    /// Builds the key for the `seq`-th cast of process `caster`.
    pub fn new(caster: u32, seq: u64) -> Self {
        CastKey { caster, seq }
    }
}

impl std::fmt::Display for CastKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.caster, self.seq)
    }
}

/// One lifecycle step of a cast message. The vocabulary covers both paper
/// algorithms end to end; arms that do not classify their wire traffic
/// fall back to the generic `MsgSend`/`MsgRecv` pair, so *every* hosted
/// protocol gets cast/arrival/deliver events for free and classified arms
/// additionally get the consensus/timestamp structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// The application handed the message to `A-XCast` here.
    Cast,
    /// Reliable-multicast dissemination copy leaving this node.
    RmcastSend,
    /// Reliable-multicast dissemination copy arriving at this node.
    RmcastRecv,
    /// A `(TS, m)` timestamp-exchange message leaving this node.
    TsSend,
    /// A `(TS, m)` timestamp-exchange message arriving at this node.
    TsRecv,
    /// Consensus proposal traffic (forward/prepare/promise) leaving here.
    ProposeSend,
    /// Consensus proposal traffic arriving here.
    ProposeRecv,
    /// Consensus accept (phase-2a) traffic leaving here.
    AcceptSend,
    /// Consensus accept traffic arriving here.
    AcceptRecv,
    /// Decision-carrying traffic (phase-2b / learn) leaving here.
    DecideSend,
    /// Decision-carrying traffic arriving here.
    DecideRecv,
    /// Unclassified protocol message leaving this node.
    MsgSend,
    /// Unclassified protocol message arriving at this node.
    MsgRecv,
    /// The protocol A-Delivered the message at this node.
    Deliver,
    /// A hosted state machine applied the delivered message.
    SmrApply,
    /// This node crashed (simulator fault plan).
    Crash,
    /// This node was notified that some process crashed.
    CrashNotice,
}

impl Phase {
    /// Stable lowercase name (the text dump / Chrome `name` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Cast => "cast",
            Phase::RmcastSend => "rmcast-send",
            Phase::RmcastRecv => "rmcast-recv",
            Phase::TsSend => "ts-send",
            Phase::TsRecv => "ts-recv",
            Phase::ProposeSend => "propose-send",
            Phase::ProposeRecv => "propose-recv",
            Phase::AcceptSend => "accept-send",
            Phase::AcceptRecv => "accept-recv",
            Phase::DecideSend => "decide-send",
            Phase::DecideRecv => "decide-recv",
            Phase::MsgSend => "msg-send",
            Phase::MsgRecv => "msg-recv",
            Phase::Deliver => "deliver",
            Phase::SmrApply => "smr-apply",
            Phase::Crash => "crash",
            Phase::CrashNotice => "crash-notice",
        }
    }
}

/// One recorded event: *who* (node), *when* (the host runtime's own clock,
/// microseconds), *what* ([`Phase`]), *about which cast* (if attributable)
/// and *with whom* (the other endpoint of a send/receive, if any).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Timestamp in microseconds on the host runtime's clock (virtual
    /// time in the simulator, elapsed wall time on sockets).
    pub at_us: u64,
    /// The process this event happened at.
    pub node: u32,
    /// The lifecycle step.
    pub phase: Phase,
    /// The cast this event is attributable to, when known. Control events
    /// (crashes) and unclassifiable batches carry `None`.
    pub cast: Option<CastKey>,
    /// The other endpoint of a send (`to`) or receive (`from`), if any.
    pub peer: Option<u32>,
}

impl TraceEvent {
    /// Renders the event as one stable text line (no trailing newline):
    /// `t=<us>us n<node> <phase> [cast=<caster>:<seq>] [peer=n<p>]`.
    pub fn render(&self) -> String {
        let mut s = format!("t={}us n{} {}", self.at_us, self.node, self.phase.name());
        if let Some(c) = self.cast {
            let _ = write!(s, " cast={c}");
        }
        if let Some(p) = self.peer {
            let _ = write!(s, " peer=n{p}");
        }
        s
    }
}

/// The bounded flight recorder: a ring buffer of the most recent
/// [`TraceEvent`]s, evicting oldest-first at a fixed capacity.
///
/// Memory is bounded by construction (`capacity` events plus the deque's
/// spare), and eviction is order-preserving: after any push sequence the
/// ring holds exactly the suffix of what was pushed (property-tested
/// below). The count of evicted events is kept so a dump can say how much
/// history scrolled off.
#[derive(Clone, Debug, Default)]
pub struct TraceRing {
    cap: usize,
    buf: VecDeque<TraceEvent>,
    evicted: u64,
}

impl TraceRing {
    /// A recorder holding at most `capacity` events (0 records nothing).
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            cap: capacity,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            evicted: 0,
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.cap == 0 {
            self.evicted += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(ev);
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// How many events have been evicted (history that scrolled off).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The held events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Clones the held events out, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf.iter().copied().collect()
    }

    /// The text dump: a header naming length/capacity/evictions, then one
    /// [`TraceEvent::render`] line per event, oldest first. This is the
    /// payload the control-plane trace pull ships and the `peer` binary
    /// prints on panic.
    pub fn dump(&self) -> String {
        let mut out = format!(
            "flight-recorder: {} event(s) held (capacity {}, {} evicted)\n",
            self.buf.len(),
            self.cap,
            self.evicted
        );
        for ev in &self.buf {
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }
}

/// Renders a slice of events as dump-style lines (oldest-first order is
/// the caller's responsibility), one per line.
pub fn render_events(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.render());
        out.push('\n');
    }
    out
}

/// The violation-forensics view: the ordered story of one cast, built
/// from whatever events mention it. Events are taken in slice order
/// (hosts record in schedule order) and stably partitioned by timestamp,
/// so the narrative reads start-to-finish even if several nodes' rings
/// were concatenated.
pub fn narrative(events: &[TraceEvent], key: CastKey) -> String {
    let mut mine: Vec<&TraceEvent> = events.iter().filter(|e| e.cast == Some(key)).collect();
    mine.sort_by_key(|e| e.at_us);
    if mine.is_empty() {
        return format!("causal timeline for cast {key}: no recorded events\n");
    }
    let mut out = format!(
        "causal timeline for cast {key} ({} event(s)):\n",
        mine.len()
    );
    for (i, ev) in mine.iter().enumerate() {
        let _ = writeln!(out, "  {:>3}. {}", i + 1, ev.render());
    }
    // Name where the story stops — the line a human reads first when the
    // question is "which step never happened?".
    let last = mine.last().expect("non-empty");
    let _ = writeln!(
        out,
        "  last recorded step: {} at n{} (t={}us)",
        last.phase.name(),
        last.node,
        last.at_us
    );
    out
}

/// Escapes a string for inclusion in a JSON string literal. The trace
/// vocabulary is ASCII identifiers and numbers, but the exporter escapes
/// anyway so arbitrary future detail text cannot corrupt the file.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Exports events as Chrome `trace_event` JSON (the "JSON Array Format"
/// wrapped in a `traceEvents` object), openable in `chrome://tracing` and
/// Perfetto. Each event becomes an instant event (`"ph":"i"`) with
/// `pid`/`tid` = the node id, `ts` in microseconds, the phase as `name`
/// and the cast key under `args` — so filtering by cast id in the viewer
/// shows one message's lifecycle across every node's track.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = match ev.cast {
            Some(c) => format!("{} {}", ev.phase.name(), c),
            None => ev.phase.name().to_string(),
        };
        let _ = write!(
            out,
            "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{",
            json_escape(&name),
            json_escape(ev.phase.name()),
            ev.at_us,
            ev.node,
            ev.node,
        );
        let mut first = true;
        if let Some(c) = ev.cast {
            let _ = write!(out, "\"cast\":\"{c}\"");
            first = false;
        }
        if let Some(p) = ev.peer {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "\"peer\":{p}");
        }
        out.push_str("}}");
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Validates that `text` is one syntactically well-formed JSON value
/// (plus trailing whitespace). Dependency-free on purpose: tests and CI
/// assert the [`chrome_trace`] export parses without pulling in a JSON
/// library the workspace has banned.
///
/// # Errors
///
/// Returns `"byte <offset>: <what>"` at the first syntax error.
pub fn validate_json(text: &str) -> Result<(), String> {
    let b = text.as_bytes();
    let mut at = 0usize;
    skip_ws(b, &mut at);
    value(b, &mut at)?;
    skip_ws(b, &mut at);
    if at != b.len() {
        return Err(format!("byte {at}: trailing content after JSON value"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], at: &mut usize) {
    while *at < b.len() && matches!(b[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn expect(b: &[u8], at: &mut usize, lit: &str) -> Result<(), String> {
    if b[*at..].starts_with(lit.as_bytes()) {
        *at += lit.len();
        Ok(())
    } else {
        Err(format!("byte {at}: expected `{lit}`"))
    }
}

fn value(b: &[u8], at: &mut usize) -> Result<(), String> {
    skip_ws(b, at);
    match b.get(*at) {
        None => Err(format!("byte {at}: unexpected end of input")),
        Some(b'{') => {
            *at += 1;
            skip_ws(b, at);
            if b.get(*at) == Some(&b'}') {
                *at += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, at);
                string(b, at)?;
                skip_ws(b, at);
                expect(b, at, ":")?;
                value(b, at)?;
                skip_ws(b, at);
                match b.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b'}') => {
                        *at += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("byte {at}: expected `,` or `}}` in object")),
                }
            }
        }
        Some(b'[') => {
            *at += 1;
            skip_ws(b, at);
            if b.get(*at) == Some(&b']') {
                *at += 1;
                return Ok(());
            }
            loop {
                value(b, at)?;
                skip_ws(b, at);
                match b.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b']') => {
                        *at += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("byte {at}: expected `,` or `]` in array")),
                }
            }
        }
        Some(b'"') => string(b, at),
        Some(b't') => expect(b, at, "true"),
        Some(b'f') => expect(b, at, "false"),
        Some(b'n') => expect(b, at, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, at),
        Some(c) => Err(format!("byte {at}: unexpected byte {:#04x}", c)),
    }
}

fn string(b: &[u8], at: &mut usize) -> Result<(), String> {
    expect(b, at, "\"")?;
    while let Some(&c) = b.get(*at) {
        match c {
            b'"' => {
                *at += 1;
                return Ok(());
            }
            b'\\' => {
                *at += 1;
                match b.get(*at) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *at += 1,
                    Some(b'u') => {
                        *at += 1;
                        for _ in 0..4 {
                            match b.get(*at) {
                                Some(h) if h.is_ascii_hexdigit() => *at += 1,
                                _ => return Err(format!("byte {at}: bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(format!("byte {at}: bad escape")),
                }
            }
            0x00..=0x1f => return Err(format!("byte {at}: raw control character in string")),
            _ => *at += 1,
        }
    }
    Err(format!("byte {at}: unterminated string"))
}

fn number(b: &[u8], at: &mut usize) -> Result<(), String> {
    let start = *at;
    if b.get(*at) == Some(&b'-') {
        *at += 1;
    }
    let mut digits = 0;
    while b.get(*at).is_some_and(u8::is_ascii_digit) {
        *at += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("byte {start}: number has no digits"));
    }
    if b.get(*at) == Some(&b'.') {
        *at += 1;
        let mut frac = 0;
        while b.get(*at).is_some_and(u8::is_ascii_digit) {
            *at += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("byte {at}: number has empty fraction"));
        }
    }
    if matches!(b.get(*at), Some(b'e' | b'E')) {
        *at += 1;
        if matches!(b.get(*at), Some(b'+' | b'-')) {
            *at += 1;
        }
        let mut exp = 0;
        while b.get(*at).is_some_and(u8::is_ascii_digit) {
            *at += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("byte {at}: number has empty exponent"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, node: u32, phase: Phase, cast: Option<CastKey>) -> TraceEvent {
        TraceEvent {
            at_us,
            node,
            phase,
            cast,
            peer: None,
        }
    }

    #[test]
    fn ring_wraparound_is_bounded_and_oldest_first() {
        // Property: for any capacity and push count, the ring holds
        // exactly the newest `min(cap, n)` events in push order, and the
        // eviction counter accounts for the rest. A handful of (cap, n)
        // shapes — including n >> cap, n == cap, n < cap and cap == 1 —
        // covers the boundary arithmetic.
        for (cap, n) in [(4usize, 19u64), (8, 8), (8, 3), (1, 100), (16, 257)] {
            let mut ring = TraceRing::new(cap);
            for i in 0..n {
                ring.push(ev(i, 0, Phase::Cast, Some(CastKey::new(0, i))));
            }
            let held = ring.events();
            let expect_len = cap.min(n as usize);
            assert_eq!(held.len(), expect_len, "cap={cap} n={n}");
            assert_eq!(ring.len(), expect_len);
            assert_eq!(ring.evicted(), n - expect_len as u64, "cap={cap} n={n}");
            // Oldest-first: the survivors are exactly the final suffix.
            for (j, e) in held.iter().enumerate() {
                let want = n - expect_len as u64 + j as u64;
                assert_eq!(e.at_us, want, "cap={cap} n={n} slot {j}");
            }
            assert!(ring.capacity() == cap);
        }
        // Zero capacity records nothing but still counts.
        let mut z = TraceRing::new(0);
        z.push(ev(1, 0, Phase::Cast, None));
        assert!(z.is_empty());
        assert_eq!(z.evicted(), 1);
    }

    #[test]
    fn dump_and_narrative_name_the_cast() {
        let mut ring = TraceRing::new(16);
        let key = CastKey::new(1, 4);
        ring.push(ev(10, 1, Phase::Cast, Some(key)));
        ring.push(TraceEvent {
            at_us: 25,
            node: 0,
            phase: Phase::RmcastRecv,
            cast: Some(key),
            peer: Some(1),
        });
        ring.push(ev(40, 0, Phase::Deliver, Some(key)));
        ring.push(ev(41, 5, Phase::Deliver, Some(CastKey::new(2, 0))));
        let dump = ring.dump();
        assert!(dump.starts_with("flight-recorder: 4 event(s)"));
        assert!(dump.contains("t=25us n0 rmcast-recv cast=1:4 peer=n1"));

        let story = narrative(&ring.events(), key);
        assert!(story.contains("causal timeline for cast 1:4 (3 event(s))"));
        assert!(story.contains("1. t=10us n1 cast cast=1:4"));
        assert!(story.contains("last recorded step: deliver at n0 (t=40us)"));
        assert!(narrative(&ring.events(), CastKey::new(9, 9)).contains("no recorded events"));
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let mut events = Vec::new();
        for i in 0..50u64 {
            events.push(TraceEvent {
                at_us: i * 7,
                node: (i % 6) as u32,
                phase: if i % 2 == 0 {
                    Phase::TsSend
                } else {
                    Phase::Deliver
                },
                cast: (i % 3 != 0).then(|| CastKey::new((i % 4) as u32, i)),
                peer: (i % 5 == 0).then(|| ((i + 1) % 6) as u32),
            });
        }
        let json = chrome_trace(&events);
        validate_json(&json).expect("chrome export must parse");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"i\""));
        // The empty export is valid too.
        validate_json(&chrome_trace(&[])).expect("empty export");
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        for good in [
            "null",
            " true ",
            "-0.5e+10",
            "[1, 2, [], {\"a\": \"b\\n\"}]",
            "{\"x\": [false, null], \"y\": {}}",
            "\"\\u00e9\"",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good:?}: {e}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "01x",
            "\"unterminated",
            "nul",
            "[1] extra",
            "1.",
            "1e",
            "\"bad \\q escape\"",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn phase_names_are_distinct() {
        let all = [
            Phase::Cast,
            Phase::RmcastSend,
            Phase::RmcastRecv,
            Phase::TsSend,
            Phase::TsRecv,
            Phase::ProposeSend,
            Phase::ProposeRecv,
            Phase::AcceptSend,
            Phase::AcceptRecv,
            Phase::DecideSend,
            Phase::DecideRecv,
            Phase::MsgSend,
            Phase::MsgRecv,
            Phase::Deliver,
            Phase::SmrApply,
            Phase::Crash,
            Phase::CrashNotice,
        ];
        let names: std::collections::BTreeSet<_> = all.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), all.len());
    }
}
