//! Integration tests for the threaded runtime: the same protocol cores that
//! run under the simulator, on real OS threads.

use std::time::Duration;
use wamcast_core::{GenuineMulticast, MulticastConfig, RoundBroadcast};
use wamcast_net::Cluster;
use wamcast_types::{FaultPlan, GroupId, GroupSet, Payload, ProcessId, SimTime, Topology};

#[test]
fn a2_total_order_on_threads() {
    let cluster = Cluster::spawn(Topology::symmetric(2, 2), RoundBroadcast::new);
    let dest = cluster.topology().all_groups();
    let mut ids = Vec::new();
    for i in 0..6u32 {
        ids.push(cluster.cast(ProcessId(i % 4), dest, Payload::new()));
        std::thread::sleep(Duration::from_millis(2));
    }
    for &id in &ids {
        cluster
            .await_delivery_everywhere(id, Duration::from_secs(10))
            .expect("delivered");
    }
    let reference: Vec<_> = cluster
        .delivered(ProcessId(0))
        .iter()
        .map(|m| m.id)
        .collect();
    assert_eq!(reference.len(), 6);
    for p in cluster.topology().processes() {
        let seq: Vec<_> = cluster.delivered(p).iter().map(|m| m.id).collect();
        assert_eq!(seq, reference, "{p} diverged");
    }
    cluster.shutdown();
}

#[test]
fn a1_genuine_multicast_on_threads() {
    let cluster = Cluster::spawn(Topology::symmetric(3, 2), |p, t| {
        GenuineMulticast::new(p, t, MulticastConfig::default())
    });
    let d01 = GroupSet::from_iter([GroupId(0), GroupId(1)]);
    let a = cluster.cast(ProcessId(0), d01, Payload::from_static(b"a"));
    let b = cluster.cast(ProcessId(2), d01, Payload::from_static(b"b"));
    for &id in &[a, b] {
        cluster
            .await_delivery_everywhere(id, Duration::from_secs(10))
            .expect("delivered");
    }
    // Addressed processes agree on the order; bystanders (g2) saw nothing.
    let p0: Vec<_> = cluster
        .delivered(ProcessId(0))
        .iter()
        .map(|m| m.id)
        .collect();
    let p3: Vec<_> = cluster
        .delivered(ProcessId(3))
        .iter()
        .map(|m| m.id)
        .collect();
    assert_eq!(p0, p3);
    assert!(cluster.delivered(ProcessId(4)).is_empty());
    assert!(cluster.delivered(ProcessId(5)).is_empty());
    cluster.shutdown();
}

#[test]
fn a2_survives_crash_on_threads() {
    let cluster = Cluster::spawn(Topology::symmetric(2, 3), RoundBroadcast::new);
    let dest = cluster.topology().all_groups();
    let warm = cluster.cast(ProcessId(0), dest, Payload::new());
    cluster
        .await_delivery_everywhere(warm, Duration::from_secs(10))
        .expect("warm-up delivered");
    // Crash g1's ballot-0 coordinator; survivors must still make progress.
    cluster.crash(ProcessId(3));
    let id = cluster.cast(ProcessId(0), dest, Payload::new());
    cluster
        .await_delivery_everywhere(id, Duration::from_secs(15))
        .expect("delivered despite crash");
    assert!(!cluster.delivered(ProcessId(4)).iter().all(|m| m.id != id));
    cluster.shutdown();
}

#[test]
fn a1_with_retry_survives_lossy_duplicating_links() {
    // The same FaultPlan vocabulary the simulator interprets, applied at
    // the channel layer: a 60%-lossy + duplicating first 300 ms, clean
    // afterwards. A1's retransmission mode must converge to the same total
    // order everywhere.
    let until = SimTime::from_millis(300);
    let mut plan = FaultPlan::none().with_duplication(0.5, SimTime::ZERO, until);
    for from in 0..4u32 {
        for to in 0..4u32 {
            if from != to {
                plan = plan.with_drop_during(
                    ProcessId(from),
                    ProcessId(to),
                    0.6,
                    SimTime::ZERO,
                    until,
                );
            }
        }
    }
    let cluster = Cluster::spawn_faulty(Topology::symmetric(2, 2), plan, 0xFA17, |p, t| {
        GenuineMulticast::new(
            p,
            t,
            MulticastConfig::default().with_retry(Duration::from_millis(40)),
        )
    });
    let dest = cluster.topology().all_groups();
    let mut ids = Vec::new();
    for i in 0..6u32 {
        ids.push(cluster.cast(ProcessId(i % 4), dest, Payload::new()));
        std::thread::sleep(Duration::from_millis(5));
    }
    for &id in &ids {
        cluster
            .await_delivery_everywhere(id, Duration::from_secs(30))
            .expect("delivered despite loss and duplication");
    }
    let reference: Vec<_> = cluster
        .delivered(ProcessId(0))
        .iter()
        .map(|m| m.id)
        .collect();
    assert_eq!(reference.len(), 6, "every cast delivered exactly once");
    for p in cluster.topology().processes() {
        let seq: Vec<_> = cluster.delivered(p).iter().map(|m| m.id).collect();
        assert_eq!(seq, reference, "{p} diverged under faults");
    }
    cluster.shutdown();
}

#[test]
fn faulty_cluster_executes_planned_crashes() {
    // A plan-scheduled crash behaves like Cluster::crash: survivors are
    // notified and keep ordering (2 groups x 3 so the group keeps its
    // majority).
    let plan = FaultPlan::none().with_crash(SimTime::from_millis(80), ProcessId(3));
    let cluster = Cluster::spawn_faulty(Topology::symmetric(2, 3), plan, 1, |p, t| {
        RoundBroadcast::new(p, t).with_retry(Duration::from_millis(40))
    });
    let dest = cluster.topology().all_groups();
    let warm = cluster.cast(ProcessId(0), dest, Payload::new());
    cluster
        .await_delivery_everywhere(warm, Duration::from_secs(10))
        .expect("warm-up delivered");
    std::thread::sleep(Duration::from_millis(120)); // crash fires
    let id = cluster.cast(ProcessId(0), dest, Payload::new());
    cluster
        .await_delivery_everywhere(id, Duration::from_secs(15))
        .expect("delivered despite planned crash");
    assert!(cluster.delivered(ProcessId(4)).iter().any(|m| m.id == id));
    cluster.shutdown();
}

#[test]
fn shutdown_does_not_wait_for_far_future_planned_crashes() {
    // The crash watchdog sleeps toward a crash a minute out; shutdown must
    // interrupt that sleep, not serve it.
    let plan = FaultPlan::none().with_crash(SimTime::from_millis(60_000), ProcessId(0));
    let cluster = Cluster::spawn_faulty(Topology::symmetric(2, 2), plan, 1, RoundBroadcast::new);
    let dest = cluster.topology().all_groups();
    let id = cluster.cast(ProcessId(0), dest, Payload::new());
    cluster
        .await_delivery_everywhere(id, Duration::from_secs(10))
        .expect("delivered");
    let begun = std::time::Instant::now();
    cluster.shutdown();
    assert!(
        begun.elapsed() < Duration::from_secs(5),
        "shutdown must not sleep out the crash schedule"
    );
}

#[test]
fn shutdown_is_clean_with_pending_timers() {
    // A paced A2 arms timers; shutdown must not hang on them.
    let cluster = Cluster::spawn(Topology::symmetric(2, 1), |p, t| {
        RoundBroadcast::with_pacing(p, t, Duration::from_millis(50))
    });
    let dest = cluster.topology().all_groups();
    let _ = cluster.cast(ProcessId(0), dest, Payload::new());
    std::thread::sleep(Duration::from_millis(30));
    cluster.shutdown(); // must return promptly
}

#[test]
fn batched_a1_delivers_in_order_on_threads() {
    // The batching layer runs unchanged on the threaded runtime: the flush
    // timer is a real timer here, so a pooled batch below the size trigger
    // still proposes within max_delay. Two concurrent casters, batch size
    // large enough that the delay trigger does the flushing.
    use wamcast_types::BatchConfig;

    let batch = BatchConfig::new(16).with_max_delay(Duration::from_millis(10));
    let cluster = Cluster::spawn(Topology::symmetric(2, 2), move |p, t| {
        GenuineMulticast::new(p, t, MulticastConfig::default().with_batch(batch))
    });
    let dest = cluster.topology().all_groups();
    let mut ids = Vec::new();
    for i in 0..8u32 {
        ids.push(cluster.cast(ProcessId(i % 4), dest, Payload::new()));
    }
    for &id in &ids {
        cluster
            .await_delivery_everywhere(id, Duration::from_secs(10))
            .expect("batched delivery");
    }
    // Total order across all processes (broadcast destinations).
    let reference: Vec<_> = cluster
        .delivered(ProcessId(0))
        .iter()
        .map(|m| m.id)
        .collect();
    assert_eq!(reference.len(), 8);
    for p in cluster.topology().processes() {
        let seq: Vec<_> = cluster.delivered(p).iter().map(|m| m.id).collect();
        assert_eq!(seq, reference, "{p} diverged under batching");
    }
    cluster.shutdown();
}

#[test]
fn ring_multicast_with_retry_survives_lossy_links_on_threads() {
    // A registry-hosted Figure 1 baseline on the threaded runtime, under
    // the channel-layer adversary: the ring's retry mode (hand-off
    // retransmission, positive-ack Final retransmission, consensus ticks)
    // must ride out a 50%-lossy first 300 ms and still converge to one
    // total order at every addressed process.
    use wamcast_baselines::RingMulticast;

    let until = SimTime::from_millis(300);
    let mut plan = FaultPlan::none().with_duplication(0.3, SimTime::ZERO, until);
    for from in 0..6u32 {
        for to in 0..6u32 {
            if from != to {
                plan = plan.with_drop_during(
                    ProcessId(from),
                    ProcessId(to),
                    0.5,
                    SimTime::ZERO,
                    until,
                );
            }
        }
    }
    let cluster = Cluster::spawn_faulty(Topology::symmetric(3, 2), plan, 0x4417, |p, t| {
        RingMulticast::new(p, t).with_retry(Duration::from_millis(40))
    });
    // Mixed destinations: a group pair and the full set, from casters in
    // different groups (the caster need not be addressed).
    let d01 = GroupSet::from_iter([GroupId(0), GroupId(1)]);
    let d12 = GroupSet::from_iter([GroupId(1), GroupId(2)]);
    let all = cluster.topology().all_groups();
    let mut ids = Vec::new();
    for i in 0..4u32 {
        ids.push(cluster.cast(ProcessId(i % 6), d01, Payload::new()));
        ids.push(cluster.cast(ProcessId((i + 3) % 6), d12, Payload::new()));
        ids.push(cluster.cast(ProcessId((i + 5) % 6), all, Payload::new()));
        std::thread::sleep(Duration::from_millis(10));
    }
    for &id in &ids {
        cluster
            .await_delivery_everywhere(id, Duration::from_secs(30))
            .expect("delivered despite loss");
    }
    // Processes of g1 are addressed by everything: their sequences are the
    // total order every other process's projection must agree with.
    let reference: Vec<_> = cluster
        .delivered(ProcessId(2))
        .iter()
        .map(|m| m.id)
        .collect();
    assert_eq!(reference.len(), 12, "g1 delivers every cast exactly once");
    let seq3: Vec<_> = cluster
        .delivered(ProcessId(3))
        .iter()
        .map(|m| m.id)
        .collect();
    assert_eq!(seq3, reference, "g1 members agree");
    for p in cluster.topology().processes() {
        let seq: Vec<_> = cluster.delivered(p).iter().map(|m| m.id).collect();
        let projected: Vec<_> = reference
            .iter()
            .copied()
            .filter(|id| seq.contains(id))
            .collect();
        assert_eq!(seq, projected, "{p}'s order must project from g1's");
    }
    cluster.shutdown();
}
