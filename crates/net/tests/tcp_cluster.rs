//! In-process smoke of the TCP runtime: several `TcpNode`s in one test
//! process, talking over real localhost sockets. The multi-*process*
//! version (spawned peers, `kill -9` chaos) lives in the harness crate,
//! which owns the `peer` binary; this tier proves the socket plumbing —
//! framing, dial/redial, cast/ack, service requests — with no process
//! management in the way.

use std::net::{SocketAddr, TcpListener};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use wamcast_core::{GenuineMulticast, MulticastConfig, RoundBroadcast};
use wamcast_net::tcp::{self, null_service, SharedDeliveries, TcpClient, TcpNode, TcpNodeConfig};
use wamcast_types::{AppMessage, GroupSet, Payload, ProcessId, Topology};

/// Reserves `n` distinct localhost ports by binding and dropping.
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let holds: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    holds
        .iter()
        .map(|l| l.local_addr().expect("addr"))
        .collect()
}

fn spawn_a2_cluster(
    k: usize,
    d: usize,
    arm: u8,
) -> (Vec<TcpNode>, Vec<SharedDeliveries>, Vec<SocketAddr>) {
    let topo = Arc::new(Topology::symmetric(k, d));
    let addrs = free_addrs(topo.num_processes());
    let mut nodes = Vec::new();
    let mut logs = Vec::new();
    for p in topo.processes() {
        let delivered: SharedDeliveries = Arc::new(Mutex::new(Vec::new()));
        let node = tcp::serve(
            TcpNodeConfig {
                me: p,
                topo: Arc::clone(&topo),
                addrs: addrs.clone(),
                arm,
                faults: None,
                trace: None,
            },
            RoundBroadcast::new(p, &topo).with_retry(Duration::from_millis(100)),
            Arc::clone(&delivered),
            null_service(),
        )
        .expect("serve");
        logs.push(delivered);
        nodes.push(node);
    }
    (nodes, logs, addrs)
}

fn await_all(logs: &[SharedDeliveries], want: usize, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if logs.iter().all(|l| l.lock().unwrap().len() >= want) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn broadcast_total_order_over_sockets() {
    let (nodes, logs, addrs) = spawn_a2_cluster(2, 2, 7);
    let mut client = TcpClient::new(addrs[0], 7, Duration::from_secs(5));
    let all = GroupSet::first_n(2);
    let n_msgs = 20u64;
    for seq in 0..n_msgs {
        let id = client
            .cast(seq, all, Payload::from(vec![seq as u8]))
            .expect("cast");
        assert_eq!(id.origin, ProcessId(0));
        assert_eq!(id.seq, seq);
    }
    assert!(
        await_all(&logs, n_msgs as usize, Duration::from_secs(30)),
        "not all nodes delivered {n_msgs} messages: {:?}",
        logs.iter()
            .map(|l| l.lock().unwrap().len())
            .collect::<Vec<_>>()
    );
    // Total order: every node delivered the identical sequence.
    let first: Vec<AppMessage> = logs[0].lock().unwrap().clone();
    for log in &logs[1..] {
        assert_eq!(&*log.lock().unwrap(), &first, "delivery orders diverged");
    }
    for node in nodes {
        node.shutdown();
    }
}

#[test]
fn genuine_multicast_over_sockets_routes_by_group() {
    let topo = Arc::new(Topology::symmetric(2, 2));
    let addrs = free_addrs(topo.num_processes());
    let arm = 3;
    let mut nodes = Vec::new();
    let mut logs = Vec::new();
    for p in topo.processes() {
        let delivered: SharedDeliveries = Arc::new(Mutex::new(Vec::new()));
        let node = tcp::serve(
            TcpNodeConfig {
                me: p,
                topo: Arc::clone(&topo),
                addrs: addrs.clone(),
                arm,
                faults: None,
                trace: None,
            },
            GenuineMulticast::new(
                p,
                &topo,
                MulticastConfig::default().with_retry(Duration::from_millis(100)),
            ),
            Arc::clone(&delivered),
            null_service(),
        )
        .expect("serve");
        logs.push(delivered);
        nodes.push(node);
    }
    // Group-0-only cast from a group-0 member: genuineness says group 1
    // must stay silent.
    let mut client = TcpClient::new(addrs[0], arm, Duration::from_secs(5));
    let g0 = GroupSet::first_n(1);
    client
        .cast(0, g0, Payload::from_static(b"local"))
        .expect("cast");
    assert!(
        await_all(&logs[..2], 1, Duration::from_secs(30)),
        "group 0 did not deliver"
    );
    std::thread::sleep(Duration::from_millis(200));
    assert!(logs[2].lock().unwrap().is_empty(), "genuineness violated");
    assert!(logs[3].lock().unwrap().is_empty(), "genuineness violated");
    for node in nodes {
        node.shutdown();
    }
}

#[test]
fn service_requests_answered_on_reader_thread() {
    let topo = Arc::new(Topology::symmetric(1, 1));
    let addrs = free_addrs(1);
    let delivered: SharedDeliveries = Arc::new(Mutex::new(Vec::new()));
    let node = tcp::serve(
        TcpNodeConfig {
            me: ProcessId(0),
            topo: Arc::clone(&topo),
            addrs: addrs.clone(),
            arm: 0,
            faults: None,
            trace: None,
        },
        RoundBroadcast::new(ProcessId(0), &topo),
        Arc::clone(&delivered),
        Arc::new(|body: &[u8]| body.iter().rev().copied().collect()),
    )
    .expect("serve");
    let mut client = TcpClient::new(addrs[0], 0, Duration::from_secs(5));
    assert_eq!(
        client.request(vec![1, 2, 3]).expect("request"),
        vec![3, 2, 1]
    );
    // Wrong-arm clients get no reply (their frames are rejected at decode).
    let mut wrong = TcpClient::new(addrs[0], 9, Duration::from_millis(300));
    assert!(wrong.request(vec![0]).is_err());
    node.shutdown();
}

#[test]
fn shutdown_frame_ends_wait() {
    let topo = Arc::new(Topology::symmetric(1, 1));
    let addrs = free_addrs(1);
    let delivered: SharedDeliveries = Arc::new(Mutex::new(Vec::new()));
    let node = tcp::serve(
        TcpNodeConfig {
            me: ProcessId(0),
            topo: Arc::clone(&topo),
            addrs: addrs.clone(),
            arm: 1,
            faults: None,
            trace: None,
        },
        RoundBroadcast::new(ProcessId(0), &topo),
        delivered,
        null_service(),
    )
    .expect("serve");
    let addr = addrs[0];
    let h = std::thread::spawn(move || {
        let mut client = TcpClient::new(addr, 1, Duration::from_secs(5));
        std::thread::sleep(Duration::from_millis(100));
        client.shutdown_peer().expect("shutdown frame");
    });
    node.wait(); // returns once the Shutdown frame lands
    h.join().unwrap();
}
