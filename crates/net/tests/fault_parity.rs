//! Differential test for the fault-application choke point.
//!
//! Both wall-clock runtimes — the mpsc `Cluster` and the TCP runtime —
//! consult one shared [`WallFaults`] per outbound copy. This test pins the
//! property that makes that sharing meaningful: for identical
//! `(FaultPlan, seed)` and an identical send sequence, the fate stream is
//! identical, so neither runtime can drift into its own drop/duplication
//! semantics.

use std::time::Duration;
use wamcast_net::WallFaults;
use wamcast_types::{FaultConfig, FaultPlan, LinkFate, ProcessId, SimTime, Topology};

/// A deterministic send sequence: every ordered pair of a 6-process
/// topology, many times over.
fn send_sequence(n: u32, rounds: usize) -> Vec<(ProcessId, ProcessId)> {
    let mut seq = Vec::new();
    for _ in 0..rounds {
        for from in 0..n {
            for to in 0..n {
                if from != to {
                    seq.push((ProcessId(from), ProcessId(to)));
                }
            }
        }
    }
    seq
}

fn fates(faults: &WallFaults, seq: &[(ProcessId, ProcessId)]) -> Vec<LinkFate> {
    seq.iter().map(|&(f, t)| faults.fate(f, t)).collect()
}

/// The number of copies a runtime actually transmits for one fate — the
/// shared interpretation both `Cluster::spawn_faulty`'s channel path and
/// the TCP event loop apply.
fn copies(fate: &LinkFate) -> usize {
    if fate.dropped {
        0
    } else if fate.duplicate.is_some() {
        2
    } else {
        1
    }
}

fn busy_plan(seed: u64) -> FaultPlan {
    // A compiled plan with loss, duplication and a partition window, all
    // active from t=0 so wall-clock skew between the two draws cannot
    // change which rules are live.
    let topo = Topology::symmetric(3, 2);
    let cfg = FaultConfig {
        max_crashes: 0,
        fault_horizon: Duration::from_secs(3600),
        ..FaultConfig::default()
    };
    cfg.compile(&topo, seed)
}

#[test]
fn identical_seeds_draw_identical_fate_streams() {
    for seed in [1u64, 7, 0xFEED, u64::MAX / 3] {
        let plan = busy_plan(seed);
        let a = WallFaults::new(plan.clone(), seed);
        let b = WallFaults::new(plan, seed);
        let seq = send_sequence(6, 50);
        assert_eq!(
            fates(&a, &seq),
            fates(&b, &seq),
            "seed {seed}: two adversaries over the same plan diverged"
        );
    }
}

#[test]
fn different_seeds_diverge() {
    // A plan with genuinely probabilistic rules on every sampled link, so
    // the seed has something to decide.
    let mut plan = FaultPlan::none();
    for from in 0..6u32 {
        for to in 0..6u32 {
            if from != to {
                plan = plan.with_drop(ProcessId(from), ProcessId(to), 0.5);
            }
        }
    }
    let seq = send_sequence(6, 50);
    let a = fates(&WallFaults::new(plan.clone(), 3), &seq);
    let b = fates(&WallFaults::new(plan, 4), &seq);
    assert_ne!(a, b, "distinct seeds should draw distinct fate streams");
}

#[test]
fn copy_interpretation_is_shared() {
    // Pin the mapping fate -> transmitted copies that both runtimes use:
    // dropped beats duplicated, duplication transmits exactly one extra.
    let clean = LinkFate::CLEAN;
    assert_eq!(copies(&clean), 1);
    let dropped = LinkFate {
        dropped: true,
        ..LinkFate::CLEAN
    };
    assert_eq!(copies(&dropped), 0);
    let dup = LinkFate {
        duplicate: Some(0.5),
        ..LinkFate::CLEAN
    };
    assert_eq!(copies(&dup), 2);
    let both = LinkFate {
        dropped: true,
        duplicate: Some(0.5),
        ..LinkFate::CLEAN
    };
    assert_eq!(copies(&both), 0, "a dropped copy is never duplicated");

    // And the interpretation over a real stream is deterministic.
    let plan = busy_plan(11);
    let seq = send_sequence(6, 20);
    let a: Vec<usize> = fates(&WallFaults::new(plan.clone(), 11), &seq)
        .iter()
        .map(copies)
        .collect();
    let b: Vec<usize> = fates(&WallFaults::new(plan, 11), &seq)
        .iter()
        .map(copies)
        .collect();
    assert_eq!(a, b);
}

#[test]
fn total_drop_plan_drops_everything() {
    let plan = FaultPlan::none()
        .with_drop(ProcessId(0), ProcessId(1), 1.0)
        .with_drop(ProcessId(1), ProcessId(0), 1.0);
    let faults = WallFaults::new(plan, 99);
    for _ in 0..100 {
        assert!(faults.fate(ProcessId(0), ProcessId(1)).dropped);
        assert!(faults.fate(ProcessId(1), ProcessId(0)).dropped);
        // Untouched links stay clean.
        let clean = faults.fate(ProcessId(2), ProcessId(3));
        assert!(!clean.dropped && clean.duplicate.is_none());
    }
}

#[test]
fn plan_inspection_matches_input() {
    let at = SimTime::from_nanos(5);
    let plan = FaultPlan::none().with_crash(at, ProcessId(2));
    let faults = WallFaults::new(plan, 0);
    let crashes = faults.with_plan(|p| p.crashes.clone());
    assert_eq!(crashes, vec![(at, ProcessId(2))]);
}
