//! The single fault-application choke point for wall-clock runtimes.
//!
//! Both hosted transports — the in-process mpsc [`Cluster`] and the
//! multi-process TCP runtime ([`crate::tcp`]) — must consult *this* type on
//! every outbound copy, so drop/duplication semantics cannot diverge
//! between them: for the same ([`FaultPlan`], seed) and the same send
//! sequence, both runtimes draw the same fate stream (pinned by the
//! differential test in `tests/fault_parity.rs`).
//!
//! [`Cluster`]: crate::Cluster

use std::sync::Mutex;
use std::time::Instant;
use wamcast_types::{FaultInjector, FaultPlan, LinkFate, ProcessId, SimTime};

/// The lossy-link adversary shared by every sender of a runtime: the same
/// [`FaultPlan`] vocabulary the simulator interprets, applied at send time
/// against the runtime's wall clock. Everything that crosses a link —
/// protocol traffic, consensus messages, heartbeats — sees the same
/// adversary.
///
/// Scope: drop, duplication and partitions are honored; latency *spikes*
/// are not (neither an mpsc channel nor a kernel socket exposes a delay to
/// scale — shaping latency is the discrete-event runtime's job). Fates
/// draw from the plan's deterministic stream, but thread interleaving
/// makes the *assignment* of fates to messages nondeterministic;
/// bit-for-bit replay is the simulator's job.
///
/// # Example
///
/// ```
/// use wamcast_net::WallFaults;
/// use wamcast_types::{FaultPlan, ProcessId};
///
/// let plan = FaultPlan::none().with_drop(ProcessId(0), ProcessId(1), 1.0);
/// let faults = WallFaults::new(plan, 7);
/// assert!(faults.fate(ProcessId(0), ProcessId(1)).dropped);
/// ```
#[derive(Debug)]
pub struct WallFaults {
    injector: Mutex<FaultInjector>,
    start: Instant,
}

impl WallFaults {
    /// An adversary executing `plan` with the fate stream seeded by `seed`,
    /// with wall-clock zero at the moment of construction.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        WallFaults {
            injector: Mutex::new(FaultInjector::new(plan, seed)),
            start: Instant::now(),
        }
    }

    /// The instant this adversary's clock started.
    pub fn start(&self) -> Instant {
        self.start
    }

    /// Draws the fate of one `from → to` copy at the current wall clock.
    pub fn fate(&self, from: ProcessId, to: ProcessId) -> LinkFate {
        let now = SimTime::from_nanos(self.start.elapsed().as_nanos() as u64);
        self.injector
            .lock()
            .expect("fault injector poisoned")
            .on_send(from, to, now)
    }

    /// Runs `f` with the underlying plan (crash schedule inspection).
    pub fn with_plan<R>(&self, f: impl FnOnce(&FaultPlan) -> R) -> R {
        f(self
            .injector
            .lock()
            .expect("fault injector poisoned")
            .plan())
    }
}
