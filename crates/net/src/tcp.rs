//! Multi-process TCP runtime: one OS process per protocol instance,
//! connected by `std::net` sockets speaking the `wamcast_types::wire`
//! format.
//!
//! This is the runtime the simulator and the in-process [`Cluster`] cannot
//! stand in for: messages really cross byte boundaries (every send pays
//! encode + syscall + decode), and chaos means real `kill -9` and real
//! socket resets, not a flag flip. The protocol values hosted here are the
//! same sans-io state machines the other runtimes drive — the only new
//! requirement is `P::Msg: Wire`.
//!
//! # Shape
//!
//! * [`serve`] binds a listener, spawns an accept/reader thread per
//!   connection, one outbound writer thread per peer, and one event-loop
//!   thread stepping the protocol — then returns a non-generic
//!   [`TcpNode`] handle.
//! * Framing is a `u32` little-endian length prefix (bounded by
//!   [`MAX_FRAME`]) around an enveloped [`Frame`]; see
//!   [`wamcast_types::wire`] for the envelope.
//! * **Encode-once fan-out:** a peer frame's bytes name the sender, never
//!   the destination, so the event loop encodes each outbound frame
//!   exactly once (into a pooled scratch buffer) and every writer link —
//!   and every adversary-duplicated copy — shares the same `Arc<[u8]>`.
//!   Connection readers likewise decode from one pooled buffer per
//!   connection ([`read_frame_into`]).
//! * **Reconnect-on-reset:** outbound links redial on demand. Frames that
//!   race a down link are *dropped*, exactly like a lossy UDP link — the
//!   protocols' retransmission modes (`with_retry`) are what make the
//!   stack live over real sockets, so hosts should enable them.
//! * **Faults:** an optional [`WallFaults`] is consulted once per outbound
//!   copy — the *same* choke point [`Cluster`]'s channel sends use — so
//!   drop/duplication semantics cannot diverge between the two runtimes.
//!
//! Casts carry a client-chosen sequence number and are injected with
//! `MessageId::new(server, seq)`: the client knows the op id *before* the
//! bytes leave it (so a history can record every op it may have caused),
//! while the id's origin stays the hosting process, which is what the
//! protocol cores assume of `on_cast`.
//!
//! [`Cluster`]: crate::Cluster

use crate::WallFaults;
use std::collections::BinaryHeap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wamcast_trace::{Phase, TraceEvent, TraceRing};
use wamcast_types::wire::{self, Wire, WireError, WireReader, WireWriter};
use wamcast_types::{
    Action, AppMessage, Context, GroupSet, MessageId, MsgSlot, Outbox, Payload, ProcessId,
    Protocol, SimTime, Topology,
};

/// A node's shared flight recorder: the event loop appends, reader
/// threads (the control-plane trace pull) and the host's panic hook dump.
pub type SharedTrace = Arc<Mutex<TraceRing>>;

/// Upper bound on one frame's body, enforced on read before allocating.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// How long an outbound worker waits for one dial attempt.
const DIAL_TIMEOUT: Duration = Duration::from_millis(300);

/// Poll interval at which blocked threads re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(200);

/// Soft cap on one coalesced write: a writer drains its link queue into a
/// single syscall up to roughly this many bytes. Individual frames larger
/// than the cap still go out (alone); the cap only stops the batch from
/// growing further.
const COALESCE_BYTES: usize = 64 * 1024;

/// Everything that crosses a socket, peer-to-peer or client-to-peer.
///
/// `M` is the hosted protocol's message type; pure clients use [`NoMsg`].
/// Tag values are part of the wire format.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame<M> {
    /// Protocol traffic between peers.
    Peer {
        /// Sending process.
        from: ProcessId,
        /// The protocol message.
        msg: M,
    },
    /// A client asks the receiving peer to A-XCast a payload. The peer
    /// injects `AppMessage` with id `(receiver, seq)`; `seq` spaces of
    /// concurrent clients must be disjoint.
    Cast {
        /// Client-chosen sequence number (the id is known pre-send).
        seq: u64,
        /// Destination groups.
        dest: GroupSet,
        /// Application payload.
        payload: Payload,
    },
    /// The peer's acknowledgement of a [`Cast`](Self::Cast), echoing the
    /// assigned id.
    CastAck {
        /// Id the cast was injected under.
        id: MessageId,
    },
    /// An application-level request answered by the node's service hook
    /// (e.g. "what did op X return?", "send your replica log").
    Req {
        /// Opaque request body, interpreted by the service hook.
        body: Vec<u8>,
    },
    /// The service hook's reply to a [`Req`](Self::Req).
    Rep {
        /// Opaque reply body.
        body: Vec<u8>,
    },
    /// Failure-detector stand-in: tells the peer that `of` crashed.
    CrashNotify {
        /// The crashed process.
        of: ProcessId,
    },
    /// Asks the peer process to exit cleanly.
    Shutdown,
}

impl<M: Wire> Wire for Frame<M> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Frame::Peer { from, msg } => {
                w.u8(0);
                from.encode(w);
                msg.encode(w);
            }
            Frame::Cast { seq, dest, payload } => {
                w.u8(1);
                w.u64(*seq);
                dest.encode(w);
                payload.encode(w);
            }
            Frame::CastAck { id } => {
                w.u8(2);
                id.encode(w);
            }
            Frame::Req { body } => {
                w.u8(3);
                w.bytes(body);
            }
            Frame::Rep { body } => {
                w.u8(4);
                w.bytes(body);
            }
            Frame::CrashNotify { of } => {
                w.u8(5);
                of.encode(w);
            }
            Frame::Shutdown => w.u8(6),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Frame::Peer {
                from: ProcessId::decode(r)?,
                msg: M::decode(r)?,
            }),
            1 => Ok(Frame::Cast {
                seq: r.u64()?,
                dest: GroupSet::decode(r)?,
                payload: Payload::decode(r)?,
            }),
            2 => Ok(Frame::CastAck {
                id: MessageId::decode(r)?,
            }),
            // The borrowed slice is the pooled read buffer; `to_vec` is the
            // single borrow-to-owned conversion the decoded frame keeps.
            3 => Ok(Frame::Req {
                body: r.bytes()?.to_vec(),
            }),
            4 => Ok(Frame::Rep {
                body: r.bytes()?.to_vec(),
            }),
            5 => Ok(Frame::CrashNotify {
                of: ProcessId::decode(r)?,
            }),
            6 => Ok(Frame::Shutdown),
            tag => Err(WireError::UnknownTag { what: "Frame", tag }),
        }
    }
}

/// Message type of a pure client: uninhabited, so a client provably never
/// builds or accepts [`Frame::Peer`] traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NoMsg {}

impl Wire for NoMsg {
    fn encode(&self, _w: &mut WireWriter) {
        match *self {}
    }

    fn decode(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Err(WireError::UnknownTag {
            what: "NoMsg",
            tag: 0,
        })
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one length-prefixed frame, rejecting oversize claims before
/// allocating.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    read_frame_into(r, &mut body)?;
    Ok(body)
}

/// [`read_frame`] into a caller-owned buffer: clears `buf` and fills it
/// with the frame body. A connection reader looping over one buffer pays
/// one allocation for the largest frame it ever sees instead of one per
/// frame. Oversize claims are rejected before the buffer grows.
pub fn read_frame_into(r: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<()> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME}"),
        ));
    }
    buf.clear();
    buf.resize(len as usize, 0);
    r.read_exact(buf)
}

/// The A-Deliver log a node appends to and a host snapshots.
pub type SharedDeliveries = Arc<Mutex<Vec<AppMessage>>>;

/// Application hook answering [`Frame::Req`] bodies. Runs on connection
/// reader threads, concurrently with the event loop; share state through
/// the same `Arc<Mutex<…>>` handles the event loop uses.
pub type Service = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

/// A service that answers every request with an empty body.
pub fn null_service() -> Service {
    Arc::new(|_| Vec::new())
}

/// Static configuration of one TCP-hosted node.
pub struct TcpNodeConfig {
    /// This node's process id (an index into `addrs`).
    pub me: ProcessId,
    /// The cluster topology.
    pub topo: Arc<Topology>,
    /// Listen address of every process, indexed by process id.
    pub addrs: Vec<SocketAddr>,
    /// Arm id stamped into every envelope; traffic for other arms is
    /// rejected at decode time.
    pub arm: u8,
    /// Optional outbound-link adversary (the shared fault choke point).
    pub faults: Option<Arc<WallFaults>>,
    /// Optional flight recorder. `None` — the default everywhere tracing
    /// is not requested — keeps the event loop's record sites to a single
    /// branch; `Some` makes the loop append one [`TraceEvent`] per
    /// lifecycle step, sharing the ring with whoever holds the other
    /// handle (the control-plane pull, the `peer` binary's panic dump).
    pub trace: Option<SharedTrace>,
}

enum LoopEv<M> {
    Msg { from: ProcessId, msg: M },
    Cast(AppMessage),
    CrashNotify(ProcessId),
    Shutdown,
}

/// Running node handle. Non-generic, so registries can store constructors
/// for heterogeneous protocol arms behind one type.
pub struct TcpNode {
    local: SocketAddr,
    delivered: SharedDeliveries,
    stop_flag: Arc<AtomicBool>,
    // Sends LoopEv::Shutdown into the (type-erased) event loop.
    trigger: Box<dyn Fn() + Send>,
    done_rx: Receiver<()>,
    handles: Vec<JoinHandle<()>>,
}

impl TcpNode {
    /// The address this node is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Snapshot of the messages A-Delivered so far, in delivery order.
    pub fn delivered(&self) -> Vec<AppMessage> {
        self.delivered
            .lock()
            .expect("delivery log poisoned")
            .clone()
    }

    /// Blocks until the node is told to exit (a [`Frame::Shutdown`] from
    /// any connection, or [`shutdown`](Self::shutdown) from another
    /// thread), then tears down all threads.
    pub fn wait(self) {
        let _ = self.done_rx.recv();
        self.teardown();
    }

    /// Stops the node and joins every thread.
    pub fn shutdown(self) {
        (self.trigger)();
        self.teardown();
    }

    fn teardown(self) {
        self.stop_flag.store(true, Ordering::SeqCst);
        (self.trigger)();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.local, DIAL_TIMEOUT);
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// Spawns a node: listener + per-peer outbound links + protocol event
/// loop, all on OS threads of *this* process. Peer processes are started
/// from the same address list by the harness's `peer` binary.
///
/// `delivered` receives every A-Deliver; `service` answers
/// [`Frame::Req`] bodies (see [`null_service`]).
///
/// # Errors
///
/// Returns any error binding the listen address.
pub fn serve<P>(
    cfg: TcpNodeConfig,
    proto: P,
    delivered: SharedDeliveries,
    service: Service,
) -> io::Result<TcpNode>
where
    P: Protocol + Send + 'static,
    P::Msg: Wire,
{
    let TcpNodeConfig {
        me,
        topo,
        addrs,
        arm,
        faults,
        trace,
    } = cfg;
    assert_eq!(
        addrs.len(),
        topo.num_processes(),
        "one listen address per process"
    );
    let listener = TcpListener::bind(addrs[me.index()])?;
    let local = listener.local_addr()?;
    let stop_flag = Arc::new(AtomicBool::new(false));
    let (loop_tx, loop_rx) = channel::<LoopEv<P::Msg>>();
    let (done_tx, done_rx) = channel::<()>();
    let mut handles = Vec::new();

    // Outbound links: one writer thread per remote peer, dialing lazily
    // and redialing after resets. A frame that races a down link is
    // dropped (the retransmission layer recovers), mirroring loss — not
    // buffered forever, which would reorder recovery unboundedly.
    // Frames travel as `Arc<[u8]>`: the event loop encodes each outbound
    // frame exactly once and every link (and every duplicate copy) shares
    // the same bytes by refcount.
    let mut links: Vec<Option<SyncSender<Arc<[u8]>>>> = Vec::with_capacity(addrs.len());
    for (i, addr) in addrs.iter().enumerate() {
        if i == me.index() {
            links.push(None);
            continue;
        }
        let addr = *addr;
        let stop = Arc::clone(&stop_flag);
        let (tx, rx) = std::sync::mpsc::sync_channel::<Arc<[u8]>>(4096);
        links.push(Some(tx));
        handles.push(std::thread::spawn(move || {
            let mut stream: Option<TcpStream> = None;
            // Coalescing buffer: everything queued on the link when the
            // writer wakes goes out in ONE write syscall (bounded, so one
            // slow drain cannot grow it unboundedly). Under load this
            // collapses the two-syscalls-per-frame pattern into a
            // fraction of a syscall per frame.
            let mut wbuf: Vec<u8> = Vec::new();
            loop {
                let frame = match rx.recv_timeout(POLL) {
                    Ok(f) => f,
                    Err(RecvTimeoutError::Timeout) => {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => return,
                };
                // Oversize frames are unsendable (the receiver rejects
                // them); skipping preserves write_frame's drop semantics.
                let append = |wbuf: &mut Vec<u8>, f: &[u8]| {
                    if f.len() <= MAX_FRAME as usize {
                        wbuf.extend_from_slice(&(f.len() as u32).to_le_bytes());
                        wbuf.extend_from_slice(f);
                    }
                };
                wbuf.clear();
                append(&mut wbuf, &frame);
                while wbuf.len() < COALESCE_BYTES {
                    match rx.try_recv() {
                        Ok(f) => append(&mut wbuf, &f),
                        Err(_) => break,
                    }
                }
                if wbuf.is_empty() {
                    continue;
                }
                if stream.is_none() {
                    stream = TcpStream::connect_timeout(&addr, DIAL_TIMEOUT)
                        .and_then(|s| {
                            s.set_nodelay(true)?;
                            Ok(s)
                        })
                        .ok();
                }
                let Some(s) = stream.as_mut() else {
                    continue; // link down: drop the batch
                };
                if s.write_all(&wbuf).and_then(|()| s.flush()).is_err() {
                    // Reset mid-write: drop this batch, redial on the next.
                    stream = None;
                }
            }
        }));
    }

    // Accept loop + one reader thread per connection.
    {
        let stop = Arc::clone(&stop_flag);
        let loop_tx = loop_tx.clone();
        let service = Arc::clone(&service);
        let next_cast = Arc::new(Mutex::new(std::collections::HashSet::<u64>::new()));
        handles.push(std::thread::spawn(move || {
            let mut readers = Vec::new();
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(conn) = conn else { continue };
                let _ = conn.set_nodelay(true);
                let _ = conn.set_read_timeout(Some(POLL));
                let stop = Arc::clone(&stop);
                let loop_tx = loop_tx.clone();
                let service = Arc::clone(&service);
                let injected = Arc::clone(&next_cast);
                readers.push(std::thread::spawn(move || {
                    read_connection(conn, me, arm, stop, loop_tx, service, injected)
                }));
            }
            for r in readers {
                let _ = r.join();
            }
        }));
    }

    // Protocol event loop: the same step shape as the in-process runtime,
    // shipping through the links with the shared fault choke point.
    {
        let delivered = Arc::clone(&delivered);
        let stop = Arc::clone(&stop_flag);
        handles.push(std::thread::spawn(move || {
            event_loop::<P>(
                me, arm, proto, topo, loop_rx, links, delivered, faults, trace, stop,
            );
            let _ = done_tx.send(());
        }));
    }

    let trigger_tx = loop_tx;
    Ok(TcpNode {
        local,
        delivered,
        stop_flag,
        trigger: Box::new(move || {
            let _ = trigger_tx.send(LoopEv::Shutdown);
        }),
        done_rx,
        handles,
    })
}

/// Handles one inbound connection (peer or client) until EOF or shutdown.
fn read_connection<M: Wire + Send + 'static>(
    conn: TcpStream,
    me: ProcessId,
    arm: u8,
    stop: Arc<AtomicBool>,
    loop_tx: Sender<LoopEv<M>>,
    service: Service,
    injected: Arc<Mutex<std::collections::HashSet<u64>>>,
) {
    // Replies (CastAck/Rep) go back on the same socket; the Mutex orders
    // them against each other when a client pipelines.
    let write_half = match conn.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    // Pooled per-connection buffers: one read buffer every inbound frame
    // lands in, one write buffer every reply (ack/rep) is sealed into —
    // steady-state, this reader allocates only what decoded values own.
    // The BufReader turns the two-reads-per-frame pattern (length, body)
    // into memcpys from one page-sized socket read.
    let mut conn = io::BufReader::with_capacity(64 * 1024, conn);
    let mut rbuf: Vec<u8> = Vec::new();
    let mut wbuf: Vec<u8> = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match read_frame_into(&mut conn, &mut rbuf) {
            Ok(()) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return, // EOF or reset: the dialer reconnects if it cares
        };
        let frame = match wire::open::<Frame<M>>(arm, &rbuf) {
            Ok(f) => f,
            // Wrong version/arm/garbage: drop the frame, keep the
            // connection — a self-stabilizing receiver never crashes on
            // hostile input.
            Err(_) => continue,
        };
        match frame {
            Frame::Peer { from, msg } => {
                let _ = loop_tx.send(LoopEv::Msg { from, msg });
            }
            Frame::Cast { seq, dest, payload } => {
                let id = MessageId::new(me, seq);
                // Ack first (the client records the op before the send, the
                // ack is just confirmation), then inject exactly once even
                // if a client retries the frame.
                let ack: Frame<M> = Frame::CastAck { id };
                wire::seal_into(arm, &ack, &mut wbuf);
                if let Ok(mut w) = write_half.lock() {
                    let _ = write_frame(&mut *w, &wbuf);
                }
                let fresh = injected.lock().map(|mut s| s.insert(seq)).unwrap_or(false);
                if fresh {
                    let _ = loop_tx.send(LoopEv::Cast(AppMessage::new(id, dest, payload)));
                }
            }
            Frame::Req { body } => {
                let rep: Frame<M> = Frame::Rep {
                    body: service(&body),
                };
                wire::seal_into(arm, &rep, &mut wbuf);
                if let Ok(mut w) = write_half.lock() {
                    let _ = write_frame(&mut *w, &wbuf);
                }
            }
            Frame::CrashNotify { of } => {
                let _ = loop_tx.send(LoopEv::CrashNotify(of));
            }
            Frame::Shutdown => {
                let _ = loop_tx.send(LoopEv::Shutdown);
                return;
            }
            // Reply frames are client-bound; a node receiving one ignores it.
            Frame::CastAck { .. } | Frame::Rep { .. } => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn event_loop<P>(
    me: ProcessId,
    arm: u8,
    mut proto: P,
    topo: Arc<Topology>,
    rx: Receiver<LoopEv<P::Msg>>,
    links: Vec<Option<SyncSender<Arc<[u8]>>>>,
    delivered: SharedDeliveries,
    faults: Option<Arc<WallFaults>>,
    trace: Option<SharedTrace>,
    stop: Arc<AtomicBool>,
) where
    P: Protocol + Send + 'static,
    P::Msg: Wire,
{
    struct TimerEntry {
        at: Instant,
        kind: u64,
    }
    impl PartialEq for TimerEntry {
        fn eq(&self, o: &Self) -> bool {
            self.at == o.at && self.kind == o.kind
        }
    }
    impl Eq for TimerEntry {}
    impl PartialOrd for TimerEntry {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for TimerEntry {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            o.at.cmp(&self.at).then(o.kind.cmp(&self.kind))
        }
    }

    let start = faults.as_ref().map_or_else(Instant::now, |f| f.start());
    // Flight-recorder append: a no-op branch when tracing is off. Purely
    // observational — it reads the elapsed clock the loop already keeps
    // and never blocks the protocol (the only other lock holders are
    // short-lived dump readers).
    let record = |phase: Phase, cast: Option<MessageId>, peer: Option<ProcessId>| {
        if let Some(t) = &trace {
            if let Ok(mut ring) = t.lock() {
                ring.push(TraceEvent {
                    at_us: start.elapsed().as_micros() as u64,
                    node: me.0,
                    phase,
                    cast: cast.map(MessageId::cast_key),
                    peer: peer.map(|q| q.0),
                });
            }
        }
    };
    let record_msg = |msg: &P::Msg, sending: bool, peer: ProcessId| {
        if trace.is_none() {
            return;
        }
        match P::describe_msg(msg) {
            Some(info) => {
                let phase = info.class.phase(sending);
                if info.casts.is_empty() {
                    record(phase, None, Some(peer));
                } else {
                    for id in info.casts {
                        record(phase, Some(id), Some(peer));
                    }
                }
            }
            None => {
                let phase = if sending {
                    Phase::MsgSend
                } else {
                    Phase::MsgRecv
                };
                record(phase, None, Some(peer));
            }
        }
    };
    let mut timers: BinaryHeap<TimerEntry> = BinaryHeap::new();
    // Self-sends loop straight back into our own queue (no socket), via a
    // private channel pair spliced below through `pending_self`.
    let mut pending_self: std::collections::VecDeque<MsgSlot<P::Msg>> =
        std::collections::VecDeque::new();
    // Scratch buffer every outbound frame is encoded into (then copied
    // once into its shared `Arc<[u8]>`): the encode allocation is paid
    // once per event loop, not once per frame.
    let mut enc_buf: Vec<u8> = Vec::new();

    macro_rules! step {
        ($f:expr) => {{
            let ctx = Context::new(
                me,
                Arc::clone(&topo),
                SimTime::from_nanos(start.elapsed().as_nanos() as u64),
            );
            let mut out = Outbox::new();
            #[allow(clippy::redundant_closure_call)]
            ($f)(&mut proto, &ctx, &mut out);
            // The fate is drawn per copy at the shared choke point, exactly
            // as the in-process runtime's channel sends do.
            //
            // `frame` is the encode-once slot for the action being shipped:
            // the frame bytes carry `me`, not the destination, so one
            // encoding serves every destination of a `SendMany` (and every
            // duplicated copy). It is built lazily on the first remote
            // destination — an action whose copies are all dropped or
            // self-addressed never encodes at all.
            let mut ship = |to: ProcessId, msg: MsgSlot<P::Msg>, frame: &mut Option<Arc<[u8]>>| {
                // Record before the fault fate, mirroring the simulator:
                // the copy *was* sent even if the adversary eats it.
                match &msg {
                    MsgSlot::Owned(m) => record_msg(m, true, to),
                    MsgSlot::Shared(m) => record_msg(m, true, to),
                }
                let copies = match &faults {
                    None => 1,
                    Some(f) => {
                        let fate = f.fate(me, to);
                        if fate.dropped {
                            0
                        } else if fate.duplicate.is_some() {
                            2
                        } else {
                            1
                        }
                    }
                };
                if copies == 0 {
                    return;
                }
                if to == me {
                    for _ in 0..copies {
                        pending_self.push_back(msg.clone());
                    }
                    return;
                }
                if frame.is_none() {
                    let mut w = WireWriter::over(std::mem::take(&mut enc_buf));
                    w.raw(&wire::MAGIC);
                    w.u8(wire::VERSION);
                    w.u8(arm);
                    w.u8(0); // Frame::Peer tag
                    me.encode(&mut w);
                    match &msg {
                        MsgSlot::Owned(m) => m.encode(&mut w),
                        MsgSlot::Shared(m) => m.encode(&mut w),
                    }
                    enc_buf = w.finish();
                    *frame = Some(Arc::from(enc_buf.as_slice()));
                }
                let bytes = frame.as_ref().expect("just built");
                if let Some(link) = &links[to.index()] {
                    for _ in 0..copies {
                        match link.try_send(Arc::clone(bytes)) {
                            Ok(()) | Err(TrySendError::Full(_)) => {} // full = drop
                            Err(TrySendError::Disconnected(_)) => {}
                        }
                    }
                }
            };
            for action in out.drain() {
                match action {
                    Action::Send { to, msg } => ship(to, MsgSlot::Owned(msg), &mut None),
                    Action::SendMany { tos, msg } => {
                        let mut frame = None;
                        for &to in &tos {
                            ship(to, MsgSlot::Shared(Arc::clone(&msg)), &mut frame);
                        }
                    }
                    Action::Deliver(m) => {
                        record(Phase::Deliver, Some(m.id), None);
                        delivered.lock().expect("delivery log poisoned").push(m);
                    }
                    Action::Timer { after, kind } => timers.push(TimerEntry {
                        at: Instant::now() + after,
                        kind,
                    }),
                }
            }
        }};
    }

    step!(|p: &mut P, c: &Context, o: &mut Outbox<P::Msg>| p.on_start(c, o));

    loop {
        // Drain self-sends queued by the last step before anything else.
        while let Some(slot) = pending_self.pop_front() {
            let m = slot.take();
            record_msg(&m, false, me);
            let mut slot = Some(m);
            step!(|p: &mut P, c: &Context, o: &mut Outbox<P::Msg>| {
                let m = slot.take().expect("one invocation");
                p.on_message(me, m, c, o)
            });
        }
        while timers.peek().is_some_and(|t| t.at <= Instant::now()) {
            let t = timers.pop().expect("peeked");
            step!(|p: &mut P, c: &Context, o: &mut Outbox<P::Msg>| p.on_timer(t.kind, c, o));
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let wait = timers
            .peek()
            .map(|t| t.at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50))
            .min(POLL);
        let ev = match rx.recv_timeout(wait) {
            Ok(ev) => ev,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        match ev {
            LoopEv::Msg { from, msg } => {
                record_msg(&msg, false, from);
                let mut slot = Some(msg);
                step!(|p: &mut P, c: &Context, o: &mut Outbox<P::Msg>| {
                    let m = slot.take().expect("one invocation");
                    p.on_message(from, m, c, o)
                });
            }
            LoopEv::Cast(m) => {
                record(Phase::Cast, Some(m.id), None);
                let mut cast = Some(m);
                step!(|p: &mut P, c: &Context, o: &mut Outbox<P::Msg>| {
                    p.on_cast(cast.take().expect("one invocation"), c, o)
                });
            }
            LoopEv::CrashNotify(of) => {
                record(Phase::CrashNotice, None, Some(of));
                step!(|p: &mut P, c: &Context, o: &mut Outbox<P::Msg>| {
                    p.on_crash_notification(of, c, o)
                });
            }
            LoopEv::Shutdown => return,
        }
    }
}

/// Synchronous client of a TCP-hosted cluster: casts payloads and queries
/// node services, reconnecting lazily after resets.
///
/// One attempt per call — a failed [`cast`](Self::cast) is **not**
/// retried internally, because the caller must account for the op id it
/// may have committed before deciding to resend.
#[derive(Debug)]
pub struct TcpClient {
    addr: SocketAddr,
    arm: u8,
    timeout: Duration,
    stream: Option<TcpStream>,
}

impl TcpClient {
    /// A client of the node at `addr` speaking arm `arm`, with `timeout`
    /// bounding each reply wait.
    pub fn new(addr: SocketAddr, arm: u8, timeout: Duration) -> Self {
        TcpClient {
            addr,
            arm,
            timeout,
            stream: None,
        }
    }

    /// Drops the current connection; the next call redials.
    pub fn reset(&mut self) {
        self.stream = None;
    }

    fn ensure(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let s = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            s.set_nodelay(true)?;
            s.set_read_timeout(Some(self.timeout))?;
            self.stream = Some(s);
        }
        Ok(self.stream.as_mut().expect("just ensured"))
    }

    fn roundtrip(&mut self, out: Frame<NoMsg>) -> io::Result<Frame<NoMsg>> {
        let arm = self.arm;
        let deadline = Instant::now() + self.timeout;
        let res = (|| {
            let s = self.ensure()?;
            write_frame(s, &wire::seal(arm, &out))?;
            let mut rbuf = Vec::new();
            loop {
                if Instant::now() > deadline {
                    return Err(io::Error::new(io::ErrorKind::TimedOut, "reply timeout"));
                }
                read_frame_into(s, &mut rbuf)?;
                match wire::open::<Frame<NoMsg>>(arm, &rbuf) {
                    Ok(f @ (Frame::CastAck { .. } | Frame::Rep { .. })) => return Ok(f),
                    Ok(_) | Err(_) => continue, // not for us; keep waiting
                }
            }
        })();
        if res.is_err() {
            self.reset();
        }
        res
    }

    /// Asks the peer to A-XCast `payload` to `dest` under client sequence
    /// number `seq`, returning the op id (always `(peer, seq)`).
    ///
    /// # Errors
    ///
    /// Any socket error or reply timeout; the op may still commit.
    pub fn cast(&mut self, seq: u64, dest: GroupSet, payload: Payload) -> io::Result<MessageId> {
        match self.roundtrip(Frame::Cast { seq, dest, payload })? {
            Frame::CastAck { id } => Ok(id),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected CastAck",
            )),
        }
    }

    /// Sends a service request and returns the reply body.
    ///
    /// # Errors
    ///
    /// Any socket error or reply timeout.
    pub fn request(&mut self, body: Vec<u8>) -> io::Result<Vec<u8>> {
        match self.roundtrip(Frame::Req { body })? {
            Frame::Rep { body } => Ok(body),
            _ => Err(io::Error::new(io::ErrorKind::InvalidData, "expected Rep")),
        }
    }

    /// Tells the peer that `of` crashed (failure-detector stand-in).
    ///
    /// # Errors
    ///
    /// Any socket error.
    pub fn crash_notify(&mut self, of: ProcessId) -> io::Result<()> {
        let arm = self.arm;
        let frame: Frame<NoMsg> = Frame::CrashNotify { of };
        let r = (|| {
            let s = self.ensure()?;
            write_frame(s, &wire::seal(arm, &frame))
        })();
        if r.is_err() {
            self.reset();
        }
        r
    }

    /// Asks the peer process to exit cleanly.
    ///
    /// # Errors
    ///
    /// Any socket error.
    pub fn shutdown_peer(&mut self) -> io::Result<()> {
        let arm = self.arm;
        let frame: Frame<NoMsg> = Frame::Shutdown;
        let r = (|| {
            let s = self.ensure()?;
            write_frame(s, &wire::seal(arm, &frame))
        })();
        self.reset();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_and_rejection() {
        let frames: Vec<Frame<u64>> = vec![
            Frame::Peer {
                from: ProcessId(1),
                msg: 42,
            },
            Frame::Cast {
                seq: 7,
                dest: GroupSet::first_n(2),
                payload: Payload::from(b"x".to_vec()),
            },
            Frame::CastAck {
                id: MessageId::new(ProcessId(0), 7),
            },
            Frame::Req { body: vec![1, 2] },
            Frame::Rep { body: vec![] },
            Frame::CrashNotify { of: ProcessId(3) },
            Frame::Shutdown,
        ];
        for f in frames {
            assert_eq!(Frame::<u64>::from_wire(&f.to_wire()).unwrap(), f);
        }
        assert!(Frame::<u64>::from_wire(&[99]).is_err());
        assert!(NoMsg::from_wire(&[0]).is_err());
    }

    #[test]
    fn framing_roundtrip_and_cap() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc").unwrap();
        assert_eq!(read_frame(&mut &buf[..]).unwrap(), b"abc");
        // Oversize claim rejected before allocation.
        let huge = (MAX_FRAME + 1).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
        // Truncated body is an error, not a hang (reader sees EOF).
        let bad = [5u8, 0, 0, 0, b'x'];
        assert!(read_frame(&mut &bad[..]).is_err());
    }
}
