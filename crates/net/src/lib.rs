//! Threaded in-process runtime for `wamcast` protocols.
//!
//! The protocols in this workspace are sans-io state machines (see
//! `wamcast_types::proto`); the deterministic simulator (`wamcast-sim`) is
//! where experiments run. This crate demonstrates that the *same* protocol
//! values are runtime-agnostic by hosting them on real OS threads connected
//! by `std::sync::mpsc` channels, with real timers (`recv_timeout`) and wall-clock
//! [`Context::now`].
//!
//! Scope: functional execution (deliveries, ordering), not measurement —
//! latency degrees are a logical-clock notion the simulator computes; a
//! threaded runtime has no honest way to observe them. Crash *injection* is
//! supported ([`Cluster::crash`]), and crash *notifications* are fanned out
//! to survivors so consensus re-coordination works; in a real deployment
//! they would come from `wamcast_consensus::HeartbeatFd`.
//!
//! [`Context::now`]: wamcast_types::Context::now
//!
//! # Example
//!
//! ```
//! use wamcast_net::Cluster;
//! use wamcast_core::RoundBroadcast;
//! use wamcast_types::Topology;
//! use std::time::Duration;
//!
//! let topo = Topology::symmetric(2, 2);
//! let cluster = Cluster::spawn(topo, |p, t| RoundBroadcast::new(p, t));
//! let dest = cluster.topology().all_groups();
//! let id = cluster.cast(wamcast_types::ProcessId(0), dest, wamcast_types::Payload::from_static(b"hi"));
//! cluster.await_delivery_everywhere(id, Duration::from_secs(5)).expect("delivered");
//! let order = cluster.delivered(wamcast_types::ProcessId(3));
//! assert_eq!(order[0].id, id);
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod faults;
pub mod tcp;

pub use faults::WallFaults;

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wamcast_types::{
    Action, AppMessage, Context, FaultPlan, GroupSet, MessageId, MsgSlot, Outbox, Payload,
    ProcessId, Protocol, SimTime, Topology,
};

enum Ev<M> {
    /// A protocol message. Fan-out copies ([`Action::SendMany`]) share one
    /// `Arc`-held body across every destination's channel — the threaded
    /// runtime stores one allocation per logical send, like the simulator.
    Msg {
        from: ProcessId,
        msg: MsgSlot<M>,
    },
    Cast(AppMessage),
    CrashNotify(ProcessId),
    Shutdown,
}

struct TimerEntry {
    at: Instant,
    kind: u64,
}

impl PartialEq for TimerEntry {
    fn eq(&self, o: &Self) -> bool {
        self.at == o.at && self.kind == o.kind
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        // Min-heap on deadline.
        o.at.cmp(&self.at).then(o.kind.cmp(&self.kind))
    }
}

/// A cluster of protocol instances, one OS thread each.
pub struct Cluster<P: Protocol> {
    topo: Arc<Topology>,
    senders: Vec<Sender<Ev<P::Msg>>>,
    delivered: Arc<Vec<Mutex<Vec<AppMessage>>>>,
    alive: Arc<Vec<std::sync::atomic::AtomicBool>>,
    next_seq: Vec<AtomicU64>,
    handles: Vec<JoinHandle<()>>,
    /// Held open for the crash watchdog's interruptible sleep; dropped by
    /// `shutdown` so the watchdog exits immediately instead of sleeping
    /// out the remaining crash schedule.
    watchdog_stop: Option<Sender<()>>,
}

impl<P: Protocol + Send + 'static> Cluster<P> {
    /// Spawns one thread per process of `topo`, each running the protocol
    /// instance produced by `factory`.
    pub fn spawn(topo: Topology, factory: impl FnMut(ProcessId, &Topology) -> P) -> Self {
        Self::spawn_inner(topo, None, factory)
    }

    /// Spawns a cluster whose channels are wrapped in the [`FaultPlan`]
    /// adversary: sends consult the plan and may be dropped or duplicated
    /// (latency spikes are simulator-only — an mpsc channel has no delay
    /// to scale), and the plan's scheduled crashes are executed by a
    /// watchdog thread at their wall-clock offsets.
    /// `seed` feeds the plan's deterministic fate stream. Protocols hosted
    /// under a lossy plan need their retransmission mode on (e.g.
    /// `MulticastConfig::with_retry`) to stay live.
    pub fn spawn_faulty(
        topo: Topology,
        plan: FaultPlan,
        seed: u64,
        factory: impl FnMut(ProcessId, &Topology) -> P,
    ) -> Self {
        let faults = if plan.is_none() {
            None
        } else {
            Some(Arc::new(WallFaults::new(plan, seed)))
        };
        Self::spawn_inner(topo, faults, factory)
    }

    fn spawn_inner(
        topo: Topology,
        faults: Option<Arc<WallFaults>>,
        mut factory: impl FnMut(ProcessId, &Topology) -> P,
    ) -> Self {
        let topo = Arc::new(topo);
        let n = topo.num_processes();
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let delivered: Arc<Vec<Mutex<Vec<AppMessage>>>> =
            Arc::new((0..n).map(|_| Mutex::new(Vec::new())).collect());
        let alive: Arc<Vec<std::sync::atomic::AtomicBool>> = Arc::new(
            (0..n)
                .map(|_| std::sync::atomic::AtomicBool::new(true))
                .collect(),
        );
        let start = faults.as_ref().map_or_else(Instant::now, |f| f.start());
        let mut handles = Vec::with_capacity(n);
        for (i, rx) in receivers.into_iter().enumerate() {
            let pid = ProcessId(i as u32);
            let proto = factory(pid, &topo);
            let topo = Arc::clone(&topo);
            let senders = senders.clone();
            let delivered = Arc::clone(&delivered);
            let alive = Arc::clone(&alive);
            let faults = faults.clone();
            handles.push(std::thread::spawn(move || {
                run_process(
                    pid, proto, topo, rx, senders, delivered, alive, start, faults,
                )
            }));
        }
        // The plan's scheduled crashes run on a watchdog thread, mirroring
        // the simulator's crash events at wall-clock offsets. Its sleeps
        // are interruptible: shutdown drops `watchdog_stop`, which wakes
        // the `recv_timeout` with `Disconnected` and ends the thread.
        let mut watchdog_stop = None;
        if let Some(f) = &faults {
            let mut crashes = f.with_plan(|p| p.crashes.clone());
            if !crashes.is_empty() {
                crashes.sort_by_key(|&(at, _)| at);
                let senders = senders.clone();
                let alive = Arc::clone(&alive);
                let topo_w = Arc::clone(&topo);
                let (stop_tx, stop_rx) = channel::<()>();
                watchdog_stop = Some(stop_tx);
                handles.push(std::thread::spawn(move || {
                    for (at, p) in crashes {
                        let due = start + Duration::from_nanos(at.as_nanos());
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            if stop_rx.recv_timeout(wait) != Err(RecvTimeoutError::Timeout) {
                                return; // shutdown: abandon the schedule
                            }
                        }
                        alive[p.index()].store(false, Ordering::SeqCst);
                        for q in topo_w.processes() {
                            if q != p {
                                let _ = senders[q.index()].send(Ev::CrashNotify(p));
                            }
                        }
                    }
                }));
            }
        }
        Cluster {
            topo,
            senders,
            delivered,
            alive,
            next_seq: (0..n).map(|_| AtomicU64::new(0)).collect(),
            handles,
            watchdog_stop,
        }
    }

    /// The cluster topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// A-XCasts a fresh message from `caster` to `dest`, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is empty or `caster` is not a process.
    pub fn cast(&self, caster: ProcessId, dest: GroupSet, payload: Payload) -> MessageId {
        assert!(!dest.is_empty(), "destination must be non-empty");
        let seq = self.next_seq[caster.index()].fetch_add(1, Ordering::Relaxed);
        let id = MessageId::new(caster, seq);
        let msg = AppMessage::new(id, dest, payload);
        let _ = self.senders[caster.index()].send(Ev::Cast(msg));
        id
    }

    /// Crashes `p` (its thread stops handling events) and notifies all
    /// survivors, standing in for a failure detector.
    pub fn crash(&self, p: ProcessId) {
        self.alive[p.index()].store(false, Ordering::SeqCst);
        for q in self.topo.processes() {
            if q != p {
                let _ = self.senders[q.index()].send(Ev::CrashNotify(p));
            }
        }
    }

    /// Snapshot of the messages A-Delivered by `p`, in delivery order.
    pub fn delivered(&self, p: ProcessId) -> Vec<AppMessage> {
        self.delivered[p.index()]
            .lock()
            .expect("delivery log poisoned")
            .clone()
    }

    /// Blocks until every live process addressed by `id`'s destination has
    /// delivered it, or the timeout elapses.
    ///
    /// # Errors
    ///
    /// Returns `Err(AwaitTimeout)` if the deadline passes first.
    pub fn await_delivery_everywhere(
        &self,
        id: MessageId,
        timeout: Duration,
    ) -> Result<(), AwaitTimeout> {
        let deadline = Instant::now() + timeout;
        loop {
            let dest = {
                // Find dest from any process that has the message, else poll.
                self.topo.processes().find_map(|p| {
                    self.delivered[p.index()]
                        .lock()
                        .expect("delivery log poisoned")
                        .iter()
                        .find(|m| m.id == id)
                        .map(|m| m.dest)
                })
            };
            if let Some(dest) = dest {
                let all = self
                    .topo
                    .processes_in(dest)
                    .filter(|p| self.alive[p.index()].load(Ordering::SeqCst))
                    .all(|p| {
                        self.delivered[p.index()]
                            .lock()
                            .expect("delivery log poisoned")
                            .iter()
                            .any(|m| m.id == id)
                    });
                if all {
                    return Ok(());
                }
            }
            if Instant::now() > deadline {
                return Err(AwaitTimeout);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Stops all threads and joins them.
    pub fn shutdown(mut self) {
        // Wake the crash watchdog first (if any) so joining it does not
        // wait out whatever remains of the crash schedule.
        drop(self.watchdog_stop.take());
        for tx in &self.senders {
            let _ = tx.send(Ev::Shutdown);
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// Error: [`Cluster::await_delivery_everywhere`] timed out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AwaitTimeout;

impl std::fmt::Display for AwaitTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "timed out waiting for delivery")
    }
}

impl std::error::Error for AwaitTimeout {}

/// Handler invocation passed to the per-process step executor.
type StepFn<'a, P> = &'a mut dyn FnMut(&mut P, &Context, &mut Outbox<<P as Protocol>::Msg>);

#[allow(clippy::too_many_arguments)]
fn run_process<P: Protocol + Send + 'static>(
    pid: ProcessId,
    mut proto: P,
    topo: Arc<Topology>,
    rx: Receiver<Ev<P::Msg>>,
    senders: Vec<Sender<Ev<P::Msg>>>,
    delivered: Arc<Vec<Mutex<Vec<AppMessage>>>>,
    alive: Arc<Vec<std::sync::atomic::AtomicBool>>,
    start: Instant,
    faults: Option<Arc<WallFaults>>,
) {
    let mut timers: BinaryHeap<TimerEntry> = BinaryHeap::new();
    let now = |start: Instant| SimTime::from_nanos(start.elapsed().as_nanos() as u64);

    let step = |proto: &mut P, timers: &mut BinaryHeap<TimerEntry>, f: StepFn<'_, P>| {
        let ctx = Context::new(pid, Arc::clone(&topo), now(start));
        let mut out = Outbox::new();
        f(proto, &ctx, &mut out);
        // One channel send per destination; the fault fate is drawn per
        // copy, exactly as the per-destination `Send` expansion would.
        let ship = |to: ProcessId, msg: MsgSlot<P::Msg>| {
            if !alive[to.index()].load(Ordering::SeqCst) {
                return;
            }
            if let Some(l) = &faults {
                let fate = l.fate(pid, to);
                if fate.dropped {
                    return;
                }
                if fate.duplicate.is_some() {
                    let _ = senders[to.index()].send(Ev::Msg {
                        from: pid,
                        msg: msg.clone(),
                    });
                }
            }
            let _ = senders[to.index()].send(Ev::Msg { from: pid, msg });
        };
        for action in out.drain() {
            match action {
                Action::Send { to, msg } => ship(to, MsgSlot::Owned(msg)),
                Action::SendMany { tos, msg } => {
                    for &to in &tos {
                        ship(to, MsgSlot::Shared(std::sync::Arc::clone(&msg)));
                    }
                }
                Action::Deliver(m) => delivered[pid.index()]
                    .lock()
                    .expect("delivery log poisoned")
                    .push(m),
                Action::Timer { after, kind } => timers.push(TimerEntry {
                    at: Instant::now() + after,
                    kind,
                }),
            }
        }
    };

    step(&mut proto, &mut timers, &mut |p, c, o| p.on_start(c, o));

    loop {
        if !alive[pid.index()].load(Ordering::SeqCst) {
            return; // crashed: take no further steps
        }
        // Fire due timers first.
        while timers.peek().is_some_and(|t| t.at <= Instant::now()) {
            let t = timers.pop().expect("peeked");
            step(&mut proto, &mut timers, &mut |p, c, o| {
                p.on_timer(t.kind, c, o)
            });
        }
        let wait = timers
            .peek()
            .map(|t| t.at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        let ev = match rx.recv_timeout(wait) {
            Ok(ev) => ev,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        match ev {
            Ev::Msg { from, msg } => {
                // `step` invokes the handler exactly once; the Option dance
                // moves the body out of the FnMut without a deep copy.
                let mut slot = Some(msg);
                step(&mut proto, &mut timers, &mut |p, c, o| {
                    let m = slot.take().expect("one invocation per step").take();
                    p.on_message(from, m, c, o)
                });
            }
            Ev::Cast(m) => {
                let mut cast = Some(m);
                step(&mut proto, &mut timers, &mut |p, c, o| {
                    p.on_cast(cast.take().expect("one invocation per step"), c, o)
                });
            }
            Ev::CrashNotify(of) => {
                step(&mut proto, &mut timers, &mut |p, c, o| {
                    p.on_crash_notification(of, c, o)
                });
            }
            Ev::Shutdown => return,
        }
    }
}
