//! Deterministic, allocation-lean metrics for the scale experiments.
//!
//! The paper's Figure 1 compares *isolated* casts; the scale sweeps
//! (`scale_sweep`, E14) compare latency **distributions** under open load,
//! where the product metric is the tail — p99/p999 — not the mean. This
//! crate provides the two primitives those experiments record into:
//!
//! * [`Counter`]-valued cells for monotonic event counts (casts,
//!   deliveries, sends), and
//! * [`Histogram`] — a log-bucketed latency histogram in the HdrHistogram
//!   family: 32 linear sub-buckets per power-of-two octave, giving a
//!   guaranteed relative error of at most 1/32 (≈3.1%) at any quantile,
//!   with an associative, commutative [`merge`](Histogram::merge) so
//!   per-shard histograms can be combined in any order.
//!
//! Both live in a [`MetricsRegistry`]: names are interned up front into
//! integer handles ([`CounterId`], [`HistogramId`]), so the record path is
//! an array index and an add — no hashing, no allocation — and the
//! [`dump`](MetricsRegistry::dump) / [`fingerprint`](MetricsRegistry::fingerprint)
//! are byte-deterministic (names sorted, bucket contents hashed exactly).
//!
//! # Determinism contract
//!
//! Everything here is pure integer arithmetic over explicitly recorded
//! samples: no clocks, no floats on the record path, no platform-dependent
//! iteration order. Two runs that record the same multiset of samples under
//! the same names produce byte-identical dumps and equal fingerprints —
//! regardless of recording order or how many shards the samples were
//! merged from. That is what lets the scale harness assert
//! "same seed ⇒ identical registry dump across `--threads 1` and
//! `--threads 8`" (see `wamcast-harness/tests/scale_determinism.rs`).
//!
//! The simulator's byte-identical-schedules contract is preserved by
//! construction: the harness records latencies *after* a run, from the
//! timestamps already present in `RunMetrics` (record-at-delivery), so the
//! engine never sees the metrics layer at all.
//!
//! # Example
//!
//! ```
//! use wamcast_metrics::MetricsRegistry;
//!
//! let mut reg = MetricsRegistry::new();
//! let ops = reg.counter("ops");
//! let lat = reg.histogram("latency_ns");
//! for v in [100, 250, 250, 900] {
//!     reg.inc(ops, 1);
//!     reg.record(lat, v);
//! }
//! assert_eq!(reg.counter_value(ops), 4);
//! let p50 = reg.histogram_ref(lat).p50();
//! assert!((250..=258).contains(&p50), "within 1/32 of the exact median");
//! // Dumps and fingerprints are deterministic functions of the contents.
//! assert_eq!(reg.fingerprint(), reg.clone().fingerprint());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Linear sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS = 32` equal-width buckets, bounding the relative error of
/// any reported quantile by `2^-SUB_BITS` (≈3.1%).
pub const SUB_BITS: u32 = 5;

/// Sub-buckets per octave (`2^SUB_BITS`).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// A monotonic event counter.
///
/// Plain data — the interesting structure is in [`MetricsRegistry`], which
/// owns counters by name and hands out [`CounterId`] handles for the hot
/// path.
///
/// # Example
///
/// ```
/// use wamcast_metrics::Counter;
/// let mut c = Counter::new();
/// c.inc(3);
/// c.inc(4);
/// assert_eq!(c.value(), 7);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` (saturating: a counter never wraps backwards).
    #[inline]
    pub fn inc(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Folds another counter in (sum; associative and commutative).
    #[inline]
    pub fn merge(&mut self, other: Counter) {
        self.inc(other.0);
    }
}

/// A log-bucketed histogram of `u64` samples (latencies in nanoseconds,
/// message counts, …).
///
/// Values below [`SUB_BUCKETS`] get exact width-1 buckets; from there each
/// power-of-two octave `[2^m, 2^{m+1})` is split into 32 linear
/// sub-buckets of width `2^{m-5}`, so any quantile estimate is within
/// 1/32 (≈3.1%) of the true sample. `count`/`sum`/`min`/`max` are exact.
///
/// Storage is a lazily grown `Vec<u64>` of bucket counts (at most 1920
/// entries for the full `u64` range); recording is one shift, one mask and
/// one add — no allocation once the high-water bucket exists.
///
/// [`merge`](Self::merge) adds bucket counts pointwise, which makes it
/// associative and commutative: per-thread or per-group histograms combine
/// into the same final state in any order (property-tested in this crate).
///
/// # Example
///
/// ```
/// use wamcast_metrics::Histogram;
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// assert_eq!(h.min(), 1);
/// assert_eq!(h.max(), 1000);
/// // p50 within 3.1% of the exact median.
/// let p50 = h.p50() as f64;
/// assert!((p50 - 500.0).abs() <= 500.0 / 32.0 + 1.0, "{p50}");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket counts, indexed by [`bucket_index`]; trailing zero buckets
    /// are not materialized.
    buckets: Vec<u64>,
    count: u64,
    /// Exact sum of all samples (u128: 2^64 ns-sized samples cannot
    /// overflow it).
    sum: u128,
    min: u64,
    max: u64,
}

/// The bucket a sample lands in. Exposed so tests (and the dump format)
/// can reason about the scheme directly.
///
/// # Example
///
/// ```
/// use wamcast_metrics::bucket_index;
/// assert_eq!(bucket_index(0), 0);
/// assert_eq!(bucket_index(31), 31);   // width-1 buckets up to 31
/// assert_eq!(bucket_index(32), 32);   // first octave starts linear
/// assert_eq!(bucket_index(64), 64);
/// assert_eq!(bucket_index(65), 64);   // width-2 buckets in [64, 128)
/// ```
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let shift = msb - SUB_BITS;
        let offset = ((v >> shift) as usize) & (SUB_BUCKETS - 1);
        ((shift as usize) + 1) * SUB_BUCKETS + offset
    }
}

/// Inclusive upper bound of bucket `idx` — the value [`Histogram`]
/// quantiles report for samples in that bucket.
///
/// # Example
///
/// ```
/// use wamcast_metrics::{bucket_index, bucket_high};
/// // The bound is tight: every value maps into a bucket whose bound is
/// // within 1/32 of it.
/// for v in [5u64, 100, 12_345, u64::MAX / 3] {
///     let high = bucket_high(bucket_index(v));
///     assert!(high >= v);
///     assert!(high - v <= v / 32 + 1);
/// }
/// ```
#[inline]
pub fn bucket_high(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        idx as u64
    } else {
        let octave = (idx / SUB_BUCKETS - 1) as u32 + SUB_BITS; // msb value
        let sub = (idx % SUB_BUCKETS) as u64;
        let width = 1u64 << (octave - SUB_BITS);
        (1u64 << octave) + sub * width + (width - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of the same sample value.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (0 when empty).
    #[inline]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact smallest sample (0 when empty).
    #[inline]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest sample (0 when empty).
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: the inclusive upper bound of
    /// the first bucket whose cumulative count reaches `ceil(q·count)`,
    /// clamped into `[min, max]` so the estimate never leaves the observed
    /// range. Within 1/32 (≈3.1%) of the exact order statistic; 0 when
    /// empty.
    ///
    /// # Example
    ///
    /// ```
    /// use wamcast_metrics::Histogram;
    /// let mut h = Histogram::new();
    /// for v in [10u64, 20, 30, 40] {
    ///     h.record(v);
    /// }
    /// assert_eq!(h.value_at_quantile(0.0), 10);
    /// assert_eq!(h.value_at_quantile(0.5), 20);
    /// assert_eq!(h.value_at_quantile(1.0), 40);
    /// ```
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_high(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (see [`value_at_quantile`](Self::value_at_quantile)).
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.value_at_quantile(0.999)
    }

    /// Folds another histogram in: bucket counts add pointwise, so the
    /// operation is associative and commutative and the result equals a
    /// histogram that recorded both sample multisets directly.
    ///
    /// # Example
    ///
    /// ```
    /// use wamcast_metrics::Histogram;
    /// let (mut a, mut b, mut both) = (Histogram::new(), Histogram::new(), Histogram::new());
    /// for v in [1u64, 2] { a.record(v); both.record(v); }
    /// for v in [3u64, 4] { b.record(v); both.record(v); }
    /// a.merge(&b);
    /// assert_eq!(a, both);
    /// ```
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, &src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(index, count)` pairs, ascending — the exact
    /// state [`MetricsRegistry::fingerprint`] hashes.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n != 0)
            .map(|(i, &n)| (i, n))
    }
}

/// Handle to a registered counter (an index; `Copy`, cheap to pass around).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A named collection of counters and histograms with a deterministic
/// text dump and fingerprint.
///
/// Register names up front (idempotent — re-registering a name returns the
/// same handle), then record through the integer handles; the hot path
/// never touches the name map. Dumps list metrics sorted by name, so two
/// registries with equal contents render byte-identically however they
/// were built.
///
/// # Example
///
/// ```
/// use wamcast_metrics::MetricsRegistry;
/// let mut a = MetricsRegistry::new();
/// let h = a.histogram("deliver_ns");
/// a.record(h, 1_000);
///
/// // A second registry built in a different order merges to the same state.
/// let mut b = MetricsRegistry::new();
/// b.counter("sends");
/// let h2 = b.histogram("deliver_ns");
/// b.record(h2, 2_000);
/// a.merge(&b);
/// assert_eq!(a.histogram_ref(h).count(), 2);
/// assert!(a.dump().contains("deliver_ns"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    names: BTreeMap<String, Slot>,
    counters: Vec<Counter>,
    histograms: Vec<Histogram>,
}

#[derive(Clone, Copy, Debug)]
enum Slot {
    Counter(usize),
    Histogram(usize),
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or looks up) a counter by name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a histogram.
    pub fn counter(&mut self, name: &str) -> CounterId {
        match self.names.get(name) {
            Some(Slot::Counter(i)) => CounterId(*i),
            Some(Slot::Histogram(_)) => {
                panic!("metric {name} already registered as a histogram")
            }
            None => {
                let i = self.counters.len();
                self.counters.push(Counter::new());
                self.names.insert(name.to_string(), Slot::Counter(i));
                CounterId(i)
            }
        }
    }

    /// Registers (or looks up) a histogram by name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a counter.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        match self.names.get(name) {
            Some(Slot::Histogram(i)) => HistogramId(*i),
            Some(Slot::Counter(_)) => {
                panic!("metric {name} already registered as a counter")
            }
            None => {
                let i = self.histograms.len();
                self.histograms.push(Histogram::new());
                self.names.insert(name.to_string(), Slot::Histogram(i));
                HistogramId(i)
            }
        }
    }

    /// Adds `n` to a counter (array index + add; no lookup).
    #[inline]
    pub fn inc(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].inc(n);
    }

    /// Records a sample into a histogram.
    #[inline]
    pub fn record(&mut self, id: HistogramId, v: u64) {
        self.histograms[id.0].record(v);
    }

    /// Current value of a counter.
    #[inline]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value()
    }

    /// Read access to a histogram.
    #[inline]
    pub fn histogram_ref(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0]
    }

    /// Looks a histogram up by name (slow path; for reporting).
    pub fn histogram_by_name(&self, name: &str) -> Option<&Histogram> {
        match self.names.get(name)? {
            Slot::Histogram(i) => Some(&self.histograms[*i]),
            Slot::Counter(_) => None,
        }
    }

    /// Looks a counter value up by name (slow path; for reporting).
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        match self.names.get(name)? {
            Slot::Counter(i) => Some(self.counters[*i].value()),
            Slot::Histogram(_) => None,
        }
    }

    /// Folds another registry in by name: counters add, histograms merge,
    /// names absent here are registered. Associative and commutative —
    /// per-shard registries combine to the same state in any order.
    ///
    /// # Panics
    ///
    /// Panics if a name is a counter in one registry and a histogram in
    /// the other.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, slot) in &other.names {
            match slot {
                Slot::Counter(i) => {
                    let id = self.counter(name);
                    self.inc(id, other.counters[*i].value());
                }
                Slot::Histogram(i) => {
                    let id = self.histogram(name);
                    self.histograms[id.0].merge(&other.histograms[*i]);
                }
            }
        }
    }

    /// Renders every metric, sorted by name, one per line — the
    /// deterministic artifact the scale-smoke CI job fingerprints.
    ///
    /// Counters render as `counter <name> <value>`; histograms as
    /// `hist <name> count=<n> min=<v> p50=<v> p99=<v> p999=<v> max=<v>
    /// sum=<v> mean=<v>` — `count`, `min`, `max` and `sum` are exact;
    /// `sum` is included so a consumer can cross-check `mean` (which
    /// rounds) and aggregate dumps without access to the buckets.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (name, slot) in &self.names {
            match slot {
                Slot::Counter(i) => {
                    let _ = writeln!(out, "counter {name} {}", self.counters[*i].value());
                }
                Slot::Histogram(i) => {
                    let h = &self.histograms[*i];
                    let _ = writeln!(
                        out,
                        "hist {name} count={} min={} p50={} p99={} p999={} max={} sum={} mean={}",
                        h.count(),
                        h.min(),
                        h.p50(),
                        h.p99(),
                        h.p999(),
                        h.max(),
                        h.sum(),
                        h.mean(),
                    );
                }
            }
        }
        out
    }

    /// FNV-1a fingerprint of the full registry state: names, counter
    /// values and *exact* histogram bucket contents (not just the summary
    /// quantiles). Equal fingerprints mean observationally identical
    /// registries.
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fnv::new();
        for (name, slot) in &self.names {
            f.write(name.as_bytes());
            match slot {
                Slot::Counter(i) => {
                    f.write_u64(0);
                    f.write_u64(self.counters[*i].value());
                }
                Slot::Histogram(i) => {
                    f.write_u64(1);
                    let h = &self.histograms[*i];
                    f.write_u64(h.count());
                    f.write_u64(h.min());
                    f.write_u64(h.max());
                    f.write_u64(h.sum() as u64);
                    f.write_u64((h.sum() >> 64) as u64);
                    for (idx, n) in h.nonzero_buckets() {
                        f.write_u64(idx as u64);
                        f.write_u64(n);
                    }
                }
            }
        }
        f.finish()
    }
}

/// Minimal FNV-1a 64-bit hasher (the same construction the harness golden
/// corpora use; kept here so the crate stays dependency-free).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_monotone_and_tight() {
        // Exhaustive over the exact range, sampled beyond it.
        let mut prev = 0usize;
        for v in 0..4096u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "indices non-decreasing at {v}");
            prev = idx;
            let high = bucket_high(idx);
            assert!(high >= v, "upper bound covers {v}");
            assert!(high - v <= v / 32 + 1, "bound within 1/32 at {v}");
        }
        // Spot checks across octaves including the extremes.
        for v in [1u64 << 20, 1 << 40, u64::MAX / 2, u64::MAX] {
            let high = bucket_high(bucket_index(v));
            assert!(high >= v && (high - v) / 32 <= v / 32 / 16 + 1);
        }
        assert!(bucket_index(u64::MAX) < 1920);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 5, 31] {
            h.record(v);
        }
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.p50(), 5);
        assert_eq!(h.value_at_quantile(1.0), 31);
        assert_eq!(h.sum(), 42);
        assert_eq!(h.mean(), 8);
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(77, 5);
        for _ in 0..5 {
            b.record(77);
        }
        assert_eq!(a, b);
        a.record_n(99, 0);
        assert_eq!(a.count(), 5, "zero-count record is a no-op");
    }

    #[test]
    fn quantiles_stay_within_observed_range() {
        let mut h = Histogram::new();
        h.record(1000);
        // A single sample: every quantile is that sample (clamped into
        // [min, max] despite the bucket bound being 1023).
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.value_at_quantile(q), 1000);
        }
    }

    #[test]
    fn registry_handles_are_idempotent_and_typed() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        assert_eq!(a, b);
        let h = reg.histogram("y");
        assert_eq!(reg.histogram("y"), h);
        reg.inc(a, 2);
        reg.record(h, 9);
        assert_eq!(reg.counter_by_name("x"), Some(2));
        assert_eq!(reg.histogram_by_name("y").unwrap().count(), 1);
        assert_eq!(reg.counter_by_name("y"), None);
        assert!(reg.histogram_by_name("x").is_none());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn name_collision_across_kinds_panics() {
        let mut reg = MetricsRegistry::new();
        reg.counter("x");
        reg.histogram("x");
    }

    #[test]
    fn dump_is_sorted_and_stable() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("zzz");
        let c = reg.counter("aaa");
        reg.inc(c, 7);
        reg.record(h, 100);
        let d = reg.dump();
        let lines: Vec<&str> = d.lines().collect();
        assert_eq!(lines[0], "counter aaa 7");
        assert!(lines[1].starts_with("hist zzz count=1 min=100"));
        // The exact fields survive quantization: one 100-valued sample.
        for field in ["count=1", "max=100", "sum=100"] {
            assert!(lines[1].contains(field), "missing {field}: {}", lines[1]);
        }
        assert_eq!(d, reg.dump());
    }

    #[test]
    fn fingerprint_distinguishes_contents() {
        let mut a = MetricsRegistry::new();
        let h = a.histogram("lat");
        a.record(h, 10);
        let mut b = MetricsRegistry::new();
        let h2 = b.histogram("lat");
        b.record(h2, 11);
        assert_ne!(a.fingerprint(), b.fingerprint());
        b = MetricsRegistry::new();
        let h3 = b.histogram("lat");
        b.record(h3, 10);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn merge_by_name_adds_and_registers() {
        let mut a = MetricsRegistry::new();
        let c = a.counter("n");
        a.inc(c, 1);
        let mut b = MetricsRegistry::new();
        let c2 = b.counter("n");
        b.inc(c2, 2);
        let h = b.histogram("lat");
        b.record(h, 5);
        a.merge(&b);
        assert_eq!(a.counter_by_name("n"), Some(3));
        assert_eq!(a.histogram_by_name("lat").unwrap().count(), 1);
    }
}
