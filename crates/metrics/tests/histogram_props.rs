//! Property tests for the histogram: merge algebra and quantile accuracy
//! against an exact sorted reference, over seeded random sample sets.

use wamcast_metrics::{Histogram, MetricsRegistry};
use wamcast_types::SplitMix64;

/// Draws a sample multiset with a heavy-tailed shape (mixing octaves is
/// what stresses the log-bucket scheme).
fn samples(rng: &mut SplitMix64, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| {
            let octave = rng.next_below(40);
            (1u64 << octave) + rng.next_below((1u64 << octave).max(1))
        })
        .collect()
}

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

#[test]
fn merge_is_associative_and_commutative() {
    let mut rng = SplitMix64::new(0x4157);
    for case in 0..64 {
        let draw = |rng: &mut SplitMix64, lo: u64| {
            let n = (lo + rng.next_below(200)) as usize;
            hist_of(&samples(rng, n))
        };
        let (a, b, c) = (draw(&mut rng, 1), draw(&mut rng, 1), draw(&mut rng, 0));
        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "case {case}: associativity");
        // a ∪ b == b ∪ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "case {case}: commutativity");
        // Identity: merging an empty histogram changes nothing.
        let mut id = a.clone();
        id.merge(&Histogram::new());
        assert_eq!(id, a, "case {case}: identity");
    }
}

#[test]
fn merge_equals_direct_recording() {
    let mut rng = SplitMix64::new(0x4158);
    for case in 0..64 {
        let n = 1 + rng.next_below(300) as usize;
        let xs = samples(&mut rng, n);
        let n = 1 + rng.next_below(300) as usize;
        let ys = samples(&mut rng, n);
        let mut merged = hist_of(&xs);
        merged.merge(&hist_of(&ys));
        let mut all = xs.clone();
        all.extend(&ys);
        assert_eq!(merged, hist_of(&all), "case {case}");
    }
}

#[test]
fn quantiles_bound_the_exact_order_statistic() {
    let mut rng = SplitMix64::new(0x9997);
    for case in 0..64 {
        let n = 1 + rng.next_below(500) as usize;
        let mut xs = samples(&mut rng, n);
        let h = hist_of(&xs);
        xs.sort_unstable();
        assert_eq!(h.count(), xs.len() as u64, "case {case}");
        assert_eq!(h.min(), xs[0], "case {case}: exact min");
        assert_eq!(h.max(), *xs.last().unwrap(), "case {case}: exact max");
        assert_eq!(
            h.sum(),
            xs.iter().map(|&v| v as u128).sum::<u128>(),
            "case {case}: exact sum"
        );
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let est = h.value_at_quantile(q);
            let rank = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
            let exact = xs[rank - 1];
            // The estimate is the (clamped) upper bound of the exact
            // sample's bucket: never below it, and within 1/32 above.
            assert!(est >= exact, "case {case} q={q}: {est} < exact {exact}");
            assert!(
                est - exact <= exact / 32 + 1,
                "case {case} q={q}: {est} too far above exact {exact}"
            );
        }
    }
}

#[test]
fn registry_merge_order_does_not_matter() {
    // Shard samples across 8 registries, merge them in two different
    // orders: dumps and fingerprints must agree byte-for-byte (the
    // deterministic-parallel-sweep contract).
    let mut rng = SplitMix64::new(0x0DDE);
    let shards: Vec<MetricsRegistry> = (0..8)
        .map(|_| {
            let mut reg = MetricsRegistry::new();
            let lat = reg.histogram("lat_ns");
            let ops = reg.counter("ops");
            let n = 1 + rng.next_below(100) as usize;
            for v in samples(&mut rng, n) {
                reg.record(lat, v);
                reg.inc(ops, 1);
            }
            reg
        })
        .collect();
    let mut fwd = MetricsRegistry::new();
    for s in &shards {
        fwd.merge(s);
    }
    let mut rev = MetricsRegistry::new();
    for s in shards.iter().rev() {
        rev.merge(s);
    }
    assert_eq!(fwd.dump(), rev.dump());
    assert_eq!(fwd.fingerprint(), rev.fingerprint());
}
