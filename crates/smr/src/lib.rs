//! Partitioned, replicated key-value service over genuine atomic multicast.
//!
//! This crate is the workspace's *application* layer — the first consumer
//! of the ordering protocols, and the reason genuine atomic multicast is
//! interesting in the first place: multi-partition operations in a sharded
//! service. Each topology group owns one key shard ([`ShardMap`]); every
//! client [`Command`] is atomically multicast to **exactly** the shards its
//! keys touch. Single-key commands (`Get`/`Put`/`Incr`) ride A1's
//! single-group fast path; `MultiPut` and `Transfer` span shards, and only
//! the involved shards exchange any message — the genuineness property,
//! now visible as "a transfer between shards 1 and 2 never bothers
//! shard 3".
//!
//! The pieces:
//!
//! * [`ShardMap`] — deterministic key→shard placement and command routing
//!   (`dest_of` is the A-MCast destination set);
//! * [`Command`] / [`Response`] — the service vocabulary and its
//!   dependency-free payload codec;
//! * [`KvStateMachine`] — the deterministic replica: applied on delivery
//!   (via `wamcast_core::WithApply`), it keeps balances, an apply log and
//!   a running digest for cross-replica comparison;
//! * [`history`] — the consistency checker: replica agreement, cross-shard
//!   atomicity, per-key linearizability of single-shard commands, and
//!   cross-shard serializability, all from recorded histories and logs;
//! * [`ApplyBug`] / [`BuggyKv`] — deliberately planted apply defects
//!   proving the checker rejects bad histories.
//!
//! The closed-loop client driver lives in `wamcast-harness` (`smr`
//! module / the `smr_kv` binary), which runs this service on both the
//! deterministic simulator (including under `FaultPlan` adversaries) and
//! the threaded `wamcast-net` cluster.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod command;
pub mod history;
mod kv;
mod shard;
mod wire;

pub use command::{Command, DecodeError, Response};
pub use history::{check, responder_shard, History, HistoryReport, OpRecord, ReplicaLog};
pub use kv::{shared_replica, AppliedOp, ApplyBug, BuggyKv, KvStateMachine, SharedKv};
pub use shard::{Key, ShardMap};
