//! KV commands, responses, and their payload codec.
//!
//! Commands ride inside [`Payload`]s — the multicast layer is oblivious to
//! them — so they need a wire form. The codec below is a fixed-width
//! little-endian format (one opcode byte, then `u64`/`i64` words): trivial
//! to decode deterministically, no external serialization dependency, and
//! every byte accounted against [`BatchConfig::max_bytes`] like any other
//! payload.
//!
//! [`BatchConfig::max_bytes`]: wamcast_types::BatchConfig

use crate::shard::Key;
use std::fmt;
use wamcast_types::Payload;

/// A client command against the partitioned store.
///
/// `Get`/`Put`/`Incr` touch one key, hence one shard — they take A1's
/// single-group fast path (no proposal exchange, no second consensus).
/// `MultiPut` and `Transfer` may touch several shards; each is multicast to
/// *exactly* the owners of its keys, the genuine-multicast showcase.
///
/// Values are `i64` so `Transfer` is unconditional (balances may go
/// negative): every replica can apply its shard's half without knowing the
/// other shard's state, which keeps apply a pure function of (state,
/// command) — the determinism the digest check relies on. What atomic
/// multicast then guarantees is that debit and credit land *atomically
/// relative to every other command*, which is what the history checker's
/// serializability test verifies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Read one key.
    Get {
        /// Key to read.
        key: Key,
    },
    /// Overwrite one key, returning the previous value.
    Put {
        /// Key to write.
        key: Key,
        /// New value.
        value: i64,
    },
    /// Add `delta` to one key (missing keys count as 0), returning the new
    /// value.
    Incr {
        /// Key to bump.
        key: Key,
        /// Signed increment.
        delta: i64,
    },
    /// Atomically overwrite several keys, possibly across shards.
    MultiPut {
        /// `(key, value)` pairs; each shard applies the pairs it owns.
        entries: Vec<(Key, i64)>,
    },
    /// Atomically move `amount` from one balance to another, possibly
    /// across shards. Conserves the total sum by construction.
    Transfer {
        /// Debited key.
        from: Key,
        /// Credited key.
        to: Key,
        /// Amount moved.
        amount: i64,
    },
}

impl Command {
    /// Visits every key the command touches.
    pub fn for_each_key(&self, mut f: impl FnMut(Key)) {
        match self {
            Command::Get { key } | Command::Put { key, .. } | Command::Incr { key, .. } => f(*key),
            Command::MultiPut { entries } => {
                for &(k, _) in entries {
                    f(k);
                }
            }
            Command::Transfer { from, to, .. } => {
                f(*from);
                f(*to);
            }
        }
    }

    /// Short stable name for tables and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Command::Get { .. } => "get",
            Command::Put { .. } => "put",
            Command::Incr { .. } => "incr",
            Command::MultiPut { .. } => "multiput",
            Command::Transfer { .. } => "transfer",
        }
    }

    /// Encodes the command into a multicast payload.
    pub fn encode(&self) -> Payload {
        let mut b = Vec::with_capacity(1 + 3 * 8);
        match self {
            Command::Get { key } => {
                b.push(0);
                b.extend_from_slice(&key.to_le_bytes());
            }
            Command::Put { key, value } => {
                b.push(1);
                b.extend_from_slice(&key.to_le_bytes());
                b.extend_from_slice(&value.to_le_bytes());
            }
            Command::Incr { key, delta } => {
                b.push(2);
                b.extend_from_slice(&key.to_le_bytes());
                b.extend_from_slice(&delta.to_le_bytes());
            }
            Command::MultiPut { entries } => {
                b.push(3);
                b.extend_from_slice(&(entries.len() as u64).to_le_bytes());
                for (k, v) in entries {
                    b.extend_from_slice(&k.to_le_bytes());
                    b.extend_from_slice(&v.to_le_bytes());
                }
            }
            Command::Transfer { from, to, amount } => {
                b.push(4);
                b.extend_from_slice(&from.to_le_bytes());
                b.extend_from_slice(&to.to_le_bytes());
                b.extend_from_slice(&amount.to_le_bytes());
            }
        }
        Payload::from(b)
    }

    /// Decodes a command from a payload.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on an unknown opcode or truncated body —
    /// which, in this workspace, indicates a payload that never was a
    /// command (the codec itself is exercised round-trip by proptest-style
    /// unit tests).
    pub fn decode(p: &Payload) -> Result<Command, DecodeError> {
        let bytes = p.as_slice();
        let (&op, rest) = bytes.split_first().ok_or(DecodeError::Truncated)?;
        let mut r = Reader(rest);
        let cmd = match op {
            0 => Command::Get { key: r.u64()? },
            1 => Command::Put {
                key: r.u64()?,
                value: r.i64()?,
            },
            2 => Command::Incr {
                key: r.u64()?,
                delta: r.i64()?,
            },
            3 => {
                let n = r.u64()?;
                if n > (r.0.len() / 16) as u64 {
                    return Err(DecodeError::Truncated);
                }
                let mut entries = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    entries.push((r.u64()?, r.i64()?));
                }
                Command::MultiPut { entries }
            }
            4 => Command::Transfer {
                from: r.u64()?,
                to: r.u64()?,
                amount: r.i64()?,
            },
            op => return Err(DecodeError::UnknownOpcode(op)),
        };
        if r.0.is_empty() {
            Ok(cmd)
        } else {
            Err(DecodeError::TrailingBytes(r.0.len()))
        }
    }
}

struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn u64(&mut self) -> Result<u64, DecodeError> {
        if self.0.len() < 8 {
            return Err(DecodeError::Truncated);
        }
        let (head, rest) = self.0.split_at(8);
        self.0 = rest;
        Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        self.u64().map(|v| v as i64)
    }
}

/// Failure decoding a [`Command`] from a payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the command did.
    Truncated,
    /// The first byte is not a known opcode.
    UnknownOpcode(u8),
    /// Bytes remained after a complete command.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated command payload"),
            DecodeError::UnknownOpcode(op) => write!(f, "unknown command opcode {op}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after command"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The result a command's *responder shard* produces when applying it.
///
/// Single-key commands are answered by their key's owner; multi-shard
/// commands are unconditional, so any addressed shard answers [`Done`]
/// (the driver reads the lowest-numbered one). Responses are part of the
/// recorded history: the checker independently replays each shard's apply
/// log and must reproduce them exactly.
///
/// [`Done`]: Response::Done
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Response {
    /// `Get`: the key's value, `None` if unset.
    Value(Option<i64>),
    /// `Put`: the overwritten value, `None` if the key was unset.
    Prev(Option<i64>),
    /// `Incr`: the value after the increment.
    NewValue(i64),
    /// `MultiPut`/`Transfer`: applied (unconditional by design).
    Done,
}

impl Response {
    /// Mixes the response into a digest word (tag + payload), so replica
    /// digests disagree if any response ever differed.
    pub(crate) fn digest_word(&self) -> u64 {
        match self {
            Response::Value(None) => 1,
            Response::Value(Some(v)) => 2u64.wrapping_add((*v as u64).rotate_left(8)),
            Response::Prev(None) => 3,
            Response::Prev(Some(v)) => 4u64.wrapping_add((*v as u64).rotate_left(16)),
            Response::NewValue(v) => 5u64.wrapping_add((*v as u64).rotate_left(24)),
            Response::Done => 6,
        }
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Value(v) => write!(f, "value={v:?}"),
            Response::Prev(v) => write!(f, "prev={v:?}"),
            Response::NewValue(v) => write!(f, "new={v}"),
            Response::Done => write!(f, "done"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wamcast_types::SplitMix64;

    fn roundtrip(c: &Command) {
        let p = c.encode();
        assert_eq!(Command::decode(&p).expect("decodes"), *c);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(&Command::Get { key: 0 });
        roundtrip(&Command::Put {
            key: u64::MAX,
            value: i64::MIN,
        });
        roundtrip(&Command::Incr { key: 7, delta: -3 });
        roundtrip(&Command::MultiPut { entries: vec![] });
        roundtrip(&Command::MultiPut {
            entries: vec![(1, 2), (3, -4), (u64::MAX, i64::MAX)],
        });
        roundtrip(&Command::Transfer {
            from: 1,
            to: 2,
            amount: -9,
        });
    }

    #[test]
    fn fuzzed_roundtrip() {
        let mut rng = SplitMix64::new(0x5317);
        for _ in 0..512 {
            let cmd = match rng.next_below(5) {
                0 => Command::Get {
                    key: rng.next_u64(),
                },
                1 => Command::Put {
                    key: rng.next_u64(),
                    value: rng.next_u64() as i64,
                },
                2 => Command::Incr {
                    key: rng.next_u64(),
                    delta: rng.next_u64() as i64,
                },
                3 => Command::MultiPut {
                    entries: (0..rng.next_below(5))
                        .map(|_| (rng.next_u64(), rng.next_u64() as i64))
                        .collect(),
                },
                _ => Command::Transfer {
                    from: rng.next_u64(),
                    to: rng.next_u64(),
                    amount: rng.next_u64() as i64,
                },
            };
            roundtrip(&cmd);
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert_eq!(
            Command::decode(&Payload::new()),
            Err(DecodeError::Truncated)
        );
        assert_eq!(
            Command::decode(&Payload::from(vec![9u8])),
            Err(DecodeError::UnknownOpcode(9))
        );
        assert_eq!(
            Command::decode(&Payload::from(vec![0u8, 1, 2])),
            Err(DecodeError::Truncated)
        );
        let mut good = Command::Get { key: 1 }.encode().as_slice().to_vec();
        good.push(0);
        assert_eq!(
            Command::decode(&Payload::from(good)),
            Err(DecodeError::TrailingBytes(1))
        );
        // A huge claimed MultiPut length must not allocate.
        let mut evil = vec![3u8];
        evil.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            Command::decode(&Payload::from(evil)),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn keys_enumerate_touched_keys() {
        let mut ks = Vec::new();
        Command::Transfer {
            from: 5,
            to: 9,
            amount: 1,
        }
        .for_each_key(|k| ks.push(k));
        assert_eq!(ks, vec![5, 9]);
    }
}
