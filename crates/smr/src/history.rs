//! The history-based consistency checker.
//!
//! A run of the KV service produces three artifacts: the client-side
//! *history* (which commands were invoked when, and what they answered),
//! the per-replica *apply logs*, and the per-replica *digests*. This module
//! checks them against the service-level contract that genuine atomic
//! multicast is supposed to buy:
//!
//! 1. **Replica agreement** — within each shard, every correct replica
//!    applied the same command sequence and ends with the same digest
//!    (state-machine replication inside the shard);
//! 2. **Cross-shard atomicity** — a command addressed to several shards is
//!    applied by all of them or by none (all-or-nothing, and certainly by
//!    all once a client saw its response);
//! 3. **Per-key linearizability** — single-shard commands on one key,
//!    whose invocation/response windows do not overlap, are applied in
//!    their real-time order, and every response matches an independent
//!    sequential replay of the shard's apply log;
//! 4. **Cross-shard serializability** — the union of the per-shard apply
//!    orders is acyclic: some global sequential order explains what every
//!    shard did. (Real-time order across *different* shards is deliberately
//!    not required — genuine multicast orders only the groups a message
//!    touches, so disjoint commands may serialize against the wall clock;
//!    see DESIGN.md §7.)
//!
//! The checker is intentionally independent of the protocol stack: it
//! replays commands through a fresh [`KvStateMachine`] and compares, so a
//! bug anywhere between delivery and apply (see
//! [`ApplyBug`](crate::ApplyBug)) surfaces as a concrete violation string
//! rather than a silently wrong table.

use crate::{AppliedOp, Command, KvStateMachine, Response, ShardMap};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use wamcast_types::{GroupId, GroupSet, MessageId, ProcessId, SimTime};

/// One client-visible operation of the history.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// The multicast id the command rode on (globally unique).
    pub id: MessageId,
    /// The command.
    pub cmd: Command,
    /// Destination shards (owners of the touched keys).
    pub dest: GroupSet,
    /// Client that issued it (driver bookkeeping; not checked).
    pub client: usize,
    /// When the client invoked it.
    pub invoked_at: SimTime,
    /// When the responder shard's reply was observed; `None` if the client
    /// gave up (op may or may not have committed).
    pub responded_at: Option<SimTime>,
    /// The observed response, if any.
    pub response: Option<Response>,
}

impl OpRecord {
    /// Whether the client saw this op commit.
    pub fn committed(&self) -> bool {
        self.response.is_some()
    }
}

/// The apply log and digest one correct replica reported.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicaLog {
    /// The replica.
    pub process: ProcessId,
    /// Its shard.
    pub group: GroupId,
    /// Its apply log, in apply order.
    pub applied: Vec<AppliedOp>,
    /// Its final digest.
    pub digest: u64,
    /// Payloads it failed to decode (0 in a healthy run).
    pub decode_errors: u64,
}

impl ReplicaLog {
    /// Snapshots a replica's observable state into a log record.
    pub fn capture(process: ProcessId, kv: &KvStateMachine) -> Self {
        ReplicaLog {
            process,
            group: kv.group(),
            applied: kv.log().to_vec(),
            digest: kv.digest(),
            decode_errors: kv.decode_errors(),
        }
    }
}

/// A complete recorded run: client history plus replica observations.
#[derive(Clone, Debug)]
pub struct History {
    /// The shard map the run used.
    pub shards: ShardMap,
    /// Client-visible operations, in invocation order.
    pub ops: Vec<OpRecord>,
    /// Logs of the replicas that were correct at the end of the run
    /// (crashed replicas stopped mid-sequence and are not comparable).
    pub replicas: Vec<ReplicaLog>,
}

impl History {
    /// Number of ops the clients saw commit.
    pub fn committed(&self) -> usize {
        self.ops.iter().filter(|o| o.committed()).count()
    }
}

/// The shard that answers a command: the key's owner for single-key
/// commands, the lowest-numbered destination shard otherwise (multi-shard
/// commands are unconditional, so any addressed shard knows the answer).
pub fn responder_shard(shards: &ShardMap, cmd: &Command, dest: GroupSet) -> GroupId {
    match cmd {
        Command::Get { key } | Command::Put { key, .. } | Command::Incr { key, .. } => {
            shards.owner(*key)
        }
        Command::MultiPut { .. } | Command::Transfer { .. } => {
            dest.iter().next().expect("non-empty destination")
        }
    }
}

/// Outcome of a history check.
#[derive(Clone, Debug, Default)]
pub struct HistoryReport {
    /// Everything that failed, one line each (empty = the history is
    /// consistent).
    pub violations: Vec<String>,
    /// Ops in the client history.
    pub ops: usize,
    /// Ops the clients saw commit.
    pub committed: usize,
    /// Shards with at least one correct replica (all were checked).
    pub shards_checked: usize,
}

impl HistoryReport {
    /// Whether every check passed.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with all violations if any check failed (test ergonomics).
    ///
    /// # Panics
    ///
    /// Panics iff `!self.is_ok()`.
    pub fn assert_ok(&self) {
        assert!(
            self.is_ok(),
            "history checker found {} violation(s):\n  {}",
            self.violations.len(),
            self.violations.join("\n  ")
        );
    }
}

/// Checks a recorded history; see the [module docs](self) for the property
/// list.
pub fn check(h: &History) -> HistoryReport {
    let mut report = HistoryReport {
        ops: h.ops.len(),
        committed: h.committed(),
        ..HistoryReport::default()
    };
    let v = &mut report.violations;

    // Index the client history.
    let mut ops_by_id: BTreeMap<MessageId, &OpRecord> = BTreeMap::new();
    for op in &h.ops {
        if ops_by_id.insert(op.id, op).is_some() {
            v.push(format!("history: duplicate op id {}", op.id));
        }
    }

    // 1. Replica agreement per shard → one canonical log per shard.
    let mut by_shard: BTreeMap<GroupId, Vec<&ReplicaLog>> = BTreeMap::new();
    for r in &h.replicas {
        if r.decode_errors > 0 {
            v.push(format!(
                "replica {}: {} undecodable payload(s)",
                r.process, r.decode_errors
            ));
        }
        by_shard.entry(r.group).or_default().push(r);
    }
    report.shards_checked = by_shard.len();
    let mut canonical: BTreeMap<GroupId, &[AppliedOp]> = BTreeMap::new();
    for (g, replicas) in &by_shard {
        let first = replicas[0];
        for r in &replicas[1..] {
            let same_seq = r.applied.len() == first.applied.len()
                && r.applied
                    .iter()
                    .zip(&first.applied)
                    .all(|(a, b)| a.id == b.id && a.response == b.response);
            if !same_seq {
                v.push(format!(
                    "shard {g}: replicas {} and {} disagree on the apply sequence \
                     ({} vs {} ops{})",
                    first.process,
                    r.process,
                    first.applied.len(),
                    r.applied.len(),
                    first_divergence(&first.applied, &r.applied)
                        .map(|i| format!(", first divergence at index {i}"))
                        .unwrap_or_default(),
                ));
            } else if r.digest != first.digest {
                v.push(format!(
                    "shard {g}: replicas {} and {} applied the same sequence but report \
                     different digests ({:#018x} vs {:#018x})",
                    first.process, r.process, first.digest, r.digest
                ));
            }
        }
        canonical.insert(*g, first.applied.as_slice());
    }

    // Per-log sanity: known ops, addressed shard, no duplicate applies.
    for (g, log) in &canonical {
        let mut seen: BTreeSet<MessageId> = BTreeSet::new();
        for a in log.iter() {
            if !seen.insert(a.id) {
                v.push(format!("shard {g}: op {} applied more than once", a.id));
            }
            match ops_by_id.get(&a.id) {
                None => v.push(format!(
                    "shard {g}: applied unknown op {} (not in the client history)",
                    a.id
                )),
                Some(op) => {
                    if !op.dest.contains(*g) {
                        v.push(format!(
                            "genuineness: shard {g} applied op {} addressed to {:?}",
                            a.id, op.dest
                        ));
                    }
                }
            }
        }
    }

    // 2. Cross-shard atomicity: applied anywhere (or committed) ⇒ applied
    // by every addressed shard.
    let applied_at: BTreeMap<GroupId, BTreeSet<MessageId>> = canonical
        .iter()
        .map(|(g, log)| (*g, log.iter().map(|a| a.id).collect()))
        .collect();
    for op in &h.ops {
        let shards_applying: Vec<GroupId> = op
            .dest
            .iter()
            .filter(|g| applied_at.get(g).is_some_and(|s| s.contains(&op.id)))
            .collect();
        let addressed_with_replicas: Vec<GroupId> = op
            .dest
            .iter()
            .filter(|g| canonical.contains_key(g))
            .collect();
        if op.committed() && shards_applying.len() < addressed_with_replicas.len() {
            v.push(format!(
                "atomicity: committed op {} ({}) applied by {:?} but addressed to {:?}",
                op.id,
                op.cmd.name(),
                shards_applying,
                addressed_with_replicas
            ));
        } else if !op.committed()
            && !shards_applying.is_empty()
            && shards_applying.len() < addressed_with_replicas.len()
        {
            v.push(format!(
                "atomicity: unacknowledged op {} ({}) applied by only {:?} of {:?}",
                op.id,
                op.cmd.name(),
                shards_applying,
                addressed_with_replicas
            ));
        }
    }

    // 3a. Sequential replay per shard: recorded responses and digests must
    // match a fresh machine fed the canonical log.
    for (g, log) in &canonical {
        let mut replay = KvStateMachine::new(*g, h.shards);
        for a in log.iter() {
            let Some(op) = ops_by_id.get(&a.id) else {
                continue; // already reported as unknown
            };
            let r = replay.apply_command(a.id, a.dest, &op.cmd);
            if r != a.response {
                v.push(format!(
                    "replay: shard {g} recorded {} for op {} ({}) but sequential replay \
                     of its own log yields {}",
                    a.response,
                    a.id,
                    op.cmd.name(),
                    r
                ));
            }
        }
        let reported = by_shard[g][0].digest;
        if replay.digest() != reported {
            v.push(format!(
                "replay: shard {g} digest {reported:#018x} does not match replay \
                 digest {:#018x}",
                replay.digest()
            ));
        }
    }

    // 3b. Client responses must equal the responder shard's recorded ones.
    for op in &h.ops {
        let Some(resp) = op.response else { continue };
        let responder = responder_shard(&h.shards, &op.cmd, op.dest);
        let Some(log) = canonical.get(&responder) else {
            continue;
        };
        match log.iter().find(|a| a.id == op.id) {
            Some(a) if a.response != resp => v.push(format!(
                "response: client observed {} for op {} ({}) but shard {responder} \
                 recorded {}",
                resp,
                op.id,
                op.cmd.name(),
                a.response
            )),
            // `None` is already an atomicity violation (committed but not
            // applied at an addressed shard).
            _ => {}
        }
    }

    // 3c. Per-key real-time order of single-shard ops.
    check_per_key_realtime(h, &canonical, v);

    // 4. Cross-shard serializability: the union of per-shard apply orders
    // must admit a topological order.
    check_serializability(&canonical, v);

    report
}

/// Index of the first position where two apply logs differ.
fn first_divergence(a: &[AppliedOp], b: &[AppliedOp]) -> Option<usize> {
    a.iter()
        .zip(b)
        .position(|(x, y)| x.id != y.id || x.response != y.response)
        .or_else(|| (a.len() != b.len()).then(|| a.len().min(b.len())))
}

fn check_per_key_realtime(
    h: &History,
    canonical: &BTreeMap<GroupId, &[AppliedOp]>,
    v: &mut Vec<String>,
) {
    // Collect single-shard ops per key with (apply position, times).
    struct Entry<'a> {
        op: &'a OpRecord,
        pos: usize,
    }
    let mut per_key: BTreeMap<u64, Vec<Entry<'_>>> = BTreeMap::new();
    for op in &h.ops {
        let key = match op.cmd {
            Command::Get { key } | Command::Put { key, .. } | Command::Incr { key, .. } => key,
            _ => continue,
        };
        let owner = h.shards.owner(key);
        let Some(log) = canonical.get(&owner) else {
            continue;
        };
        if let Some(pos) = log.iter().position(|a| a.id == op.id) {
            per_key.entry(key).or_default().push(Entry { op, pos });
        }
    }
    for (key, entries) in &per_key {
        for a in entries {
            let Some(resp_at) = a.op.responded_at else {
                continue;
            };
            for b in entries {
                if resp_at < b.op.invoked_at && a.pos > b.pos {
                    v.push(format!(
                        "linearizability: key {key}: op {} responded at {} before op {} \
                         was invoked at {}, yet applied after it",
                        a.op.id, resp_at, b.op.id, b.op.invoked_at
                    ));
                }
            }
        }
    }
}

fn check_serializability(canonical: &BTreeMap<GroupId, &[AppliedOp]>, v: &mut Vec<String>) {
    // Precedence graph: a → b for consecutive entries of each shard log
    // (transitivity makes adjacency edges sufficient for a total order).
    let mut succ: BTreeMap<MessageId, BTreeSet<MessageId>> = BTreeMap::new();
    let mut indeg: BTreeMap<MessageId, usize> = BTreeMap::new();
    for log in canonical.values() {
        for a in log.iter() {
            succ.entry(a.id).or_default();
            indeg.entry(a.id).or_default();
        }
        for w in log.windows(2) {
            if succ
                .get_mut(&w[0].id)
                .expect("inserted above")
                .insert(w[1].id)
            {
                *indeg.get_mut(&w[1].id).expect("inserted above") += 1;
            }
        }
    }
    // Kahn's algorithm; leftovers are on (or downstream of) a cycle.
    let mut queue: VecDeque<MessageId> = indeg
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&id, _)| id)
        .collect();
    let mut ordered = 0usize;
    while let Some(id) = queue.pop_front() {
        ordered += 1;
        for next in &succ[&id] {
            let d = indeg.get_mut(next).expect("all nodes present");
            *d -= 1;
            if *d == 0 {
                queue.push_back(*next);
            }
        }
    }
    if ordered < indeg.len() {
        let stuck: Vec<String> = indeg
            .iter()
            .filter(|&(_, &d)| d > 0)
            .take(6)
            .map(|(id, _)| id.to_string())
            .collect();
        v.push(format!(
            "serializability: per-shard apply orders contain a cycle ({} op(s) \
             unorderable, e.g. {})",
            indeg.len() - ordered,
            stuck.join(", ")
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wamcast_types::ProcessId;

    fn mid(origin: u32, seq: u64) -> MessageId {
        MessageId::new(ProcessId(origin), seq)
    }

    /// Builds a tiny 2-shard history by actually applying commands to
    /// replica machines, then lets tests corrupt pieces of it.
    fn two_shard_history() -> History {
        let shards = ShardMap::new(2);
        let g0 = GroupId(0);
        let g1 = GroupId(1);
        let k0 = shards.key_owned_by(g0, 0);
        let k1 = shards.key_owned_by(g1, 100);
        let cmds = [
            Command::Put { key: k0, value: 10 },
            Command::Put { key: k1, value: 20 },
            Command::Transfer {
                from: k0,
                to: k1,
                amount: 3,
            },
            Command::Get { key: k0 },
            Command::Transfer {
                from: k1,
                to: k0,
                amount: 1,
            },
        ];
        // Two replicas per shard, all applying in the same global order.
        let mut machines: Vec<(ProcessId, KvStateMachine)> = vec![
            (ProcessId(0), KvStateMachine::new(g0, shards)),
            (ProcessId(1), KvStateMachine::new(g0, shards)),
            (ProcessId(2), KvStateMachine::new(g1, shards)),
            (ProcessId(3), KvStateMachine::new(g1, shards)),
        ];
        let mut ops = Vec::new();
        for (seq, cmd) in cmds.iter().enumerate() {
            let id = mid(0, seq as u64);
            let dest = shards.dest_of(cmd);
            let mut response = None;
            let responder = responder_shard(&shards, cmd, dest);
            for (_, m) in machines
                .iter_mut()
                .filter(|(_, m)| dest.contains(m.group()))
            {
                let r = m.apply_command(id, dest, cmd);
                if m.group() == responder && response.is_none() {
                    response = Some(r);
                }
            }
            ops.push(OpRecord {
                id,
                cmd: cmd.clone(),
                dest,
                client: 0,
                invoked_at: SimTime::from_millis(10 * seq as u64),
                responded_at: Some(SimTime::from_millis(10 * seq as u64 + 5)),
                response,
            });
        }
        History {
            shards,
            ops,
            replicas: machines
                .iter()
                .map(|(p, m)| ReplicaLog::capture(*p, m))
                .collect(),
        }
    }

    #[test]
    fn clean_history_passes() {
        let h = two_shard_history();
        let r = check(&h);
        r.assert_ok();
        assert_eq!(r.ops, 5);
        assert_eq!(r.committed, 5);
        assert_eq!(r.shards_checked, 2);
        // Sanity of the fixture itself: the transfers committed on both sides.
        assert_eq!(h.replicas[0].applied.len(), 4);
        assert_eq!(h.replicas[2].applied.len(), 3);
    }

    #[test]
    fn lost_apply_is_rejected() {
        let mut h = two_shard_history();
        // Replica p1 loses its last apply (log + digest now stale).
        h.replicas[1].applied.pop();
        let r = check(&h);
        assert!(!r.is_ok());
        assert!(
            r.violations.iter().any(|s| s.contains("disagree")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn digest_mismatch_is_rejected() {
        let mut h = two_shard_history();
        h.replicas[3].digest ^= 1;
        let r = check(&h);
        assert!(
            r.violations.iter().any(|s| s.contains("different digests")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn reordered_cross_shard_apply_is_a_cycle() {
        let mut h = two_shard_history();
        // Both transfers (ops 2 and 4) are addressed to both shards; g0
        // applies 2 before 4, so making *every* g1 replica apply 4 before 2
        // keeps the shard internally consistent (agreement and digests
        // pass) — only the serializability pass can object, via the cycle
        // op2 → op4 (g0) and op4 → op2 (g1).
        let shards = h.shards;
        let g1 = GroupId(1);
        let order: Vec<usize> = vec![1, 4, 2];
        for r in h.replicas.iter_mut().filter(|r| r.group == g1) {
            let mut m = KvStateMachine::new(g1, shards);
            for &i in &order {
                let op = &h.ops[i];
                m.apply_command(op.id, op.dest, &op.cmd);
            }
            r.applied = m.log().to_vec();
            r.digest = m.digest();
        }
        let r = check(&h);
        assert!(
            r.violations.iter().any(|s| s.contains("serializability")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn wrong_response_is_rejected() {
        let mut h = two_shard_history();
        // The client "observed" a stale read.
        let get = &mut h.ops[3];
        assert!(matches!(get.cmd, Command::Get { .. }));
        get.response = Some(Response::Value(Some(999)));
        let r = check(&h);
        assert!(
            r.violations.iter().any(|s| s.contains("response:")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn committed_but_unapplied_is_an_atomicity_violation() {
        let mut h = two_shard_history();
        // Strip the transfer from shard g1's logs (and keep them mutually
        // consistent so only atomicity can catch it).
        let g1 = GroupId(1);
        let transfer_id = h.ops[2].id;
        for r in h.replicas.iter_mut().filter(|r| r.group == g1) {
            let mut m = KvStateMachine::new(g1, h.shards);
            for op in h.ops.iter().filter(|o| o.id != transfer_id) {
                if op.dest.contains(g1) {
                    m.apply_command(op.id, op.dest, &op.cmd);
                }
            }
            r.applied = m.log().to_vec();
            r.digest = m.digest();
        }
        let r = check(&h);
        assert!(
            r.violations.iter().any(|s| s.contains("atomicity")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn realtime_inversion_on_a_key_is_rejected() {
        let mut h = two_shard_history();
        // Ops 0 (put k0, responds at t=5) and 3 (get k0, invoked at t=30)
        // do not overlap in real time, so the put must be applied first.
        // Rebuild both g0 replicas with the get applied before the put —
        // agreement holds and the per-shard orders stay acyclic, so only
        // the per-key real-time check can fire.
        let g0 = GroupId(0);
        for r in h.replicas.iter_mut().filter(|r| r.group == g0) {
            let mut m = KvStateMachine::new(g0, h.shards);
            for &i in &[3usize, 0, 2, 4] {
                let op = &h.ops[i];
                m.apply_command(op.id, op.dest, &op.cmd);
            }
            r.applied = m.log().to_vec();
            r.digest = m.digest();
        }
        // Keep client responses consistent with the reordered replay so
        // only the real-time check can fire.
        h.ops[3].response = Some(Response::Value(None));
        h.ops[0].response = Some(Response::Prev(None));
        let r = check(&h);
        assert!(
            r.violations.iter().any(|s| s.contains("linearizability")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn unknown_and_duplicate_applies_are_rejected() {
        let mut h = two_shard_history();
        let ghost = AppliedOp {
            id: mid(9, 9),
            dest: GroupSet::singleton(GroupId(0)),
            response: Response::Done,
        };
        for r in h.replicas.iter_mut().filter(|r| r.group == GroupId(0)) {
            r.applied.push(ghost.clone());
            let dup = r.applied[0].clone();
            r.applied.push(dup);
        }
        let r = check(&h);
        assert!(r.violations.iter().any(|s| s.contains("unknown op")));
        assert!(r.violations.iter().any(|s| s.contains("more than once")));
    }
}
