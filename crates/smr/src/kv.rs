//! The deterministic per-shard KV state machine.

use crate::{Command, Response, ShardMap};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use wamcast_types::{AppMessage, GroupId, GroupSet, MessageId, StateMachine};

/// One command as applied by a replica: what the apply log records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppliedOp {
    /// The multicast message id — the history's op identifier.
    pub id: MessageId,
    /// The destination shards of the command.
    pub dest: GroupSet,
    /// The response this shard's apply produced.
    pub response: Response,
}

/// A replica of one shard of the partitioned store.
///
/// Applies every delivered [`Command`] to a `BTreeMap` of balances,
/// restricted to the keys its group owns, and records an *apply log* (op
/// id, destination, response) plus a running digest over everything the
/// apply sequence did: op ids, responses, and each `(key, value)` write.
/// Two replicas of the same shard fed the same delivery sequence are
/// byte-identical — equal logs and equal digests — which is exactly what
/// the history checker's replica-agreement pass compares (and what the
/// [`ApplyBug`] hooks break on purpose, to prove it looks).
///
/// # Example
///
/// ```
/// use wamcast_smr::{Command, KvStateMachine, Response, ShardMap};
/// use wamcast_types::{GroupSet, MessageId, ProcessId};
///
/// let shards = ShardMap::new(1);
/// let mut kv = KvStateMachine::new(shards.owner(7), shards);
/// let put = Command::Put { key: 7, value: 3 };
/// let r = kv.apply_command(
///     MessageId::new(ProcessId(0), 0),
///     shards.dest_of(&put),
///     &put,
/// );
/// assert_eq!(r, Response::Prev(None));
/// assert_eq!(kv.value(7), Some(3));
/// ```
#[derive(Clone, Debug)]
pub struct KvStateMachine {
    group: GroupId,
    shards: ShardMap,
    state: BTreeMap<u64, i64>,
    log: Vec<AppliedOp>,
    digest: u64,
    decode_errors: u64,
}

impl KvStateMachine {
    /// A fresh, empty replica of group `group`'s shard.
    pub fn new(group: GroupId, shards: ShardMap) -> Self {
        KvStateMachine {
            group,
            shards,
            state: BTreeMap::new(),
            log: Vec::new(),
            digest: FNV_OFFSET,
            decode_errors: 0,
        }
    }

    /// The shard (group) this replica serves.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// The shard map the replica routes by.
    pub fn shards(&self) -> ShardMap {
        self.shards
    }

    /// Current value of `key` at this replica (`None` if unset or not owned
    /// here).
    pub fn value(&self, key: u64) -> Option<i64> {
        self.state.get(&key).copied()
    }

    /// The apply log, in apply order.
    pub fn log(&self) -> &[AppliedOp] {
        &self.log
    }

    /// The recorded response for op `id`, if this replica applied it.
    pub fn response_of(&self, id: MessageId) -> Option<&AppliedOp> {
        self.log.iter().find(|a| a.id == id)
    }

    /// Running digest over the whole apply history (op ids, responses, and
    /// every write's `(key, value)`). Order-sensitive by construction.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Payloads that failed to decode as commands (always 0 in a healthy
    /// deployment; counted instead of panicking so a checker, not an
    /// `unwrap`, reports the corruption).
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    /// Sum of all balances held by this shard (conservation checks).
    pub fn shard_sum(&self) -> i64 {
        self.state.values().sum()
    }

    fn mix(&mut self, word: u64) {
        // FNV-1a over 64-bit words: cheap, order-sensitive, dependency-free.
        self.digest ^= word;
        self.digest = self.digest.wrapping_mul(FNV_PRIME);
    }

    fn write(&mut self, key: u64, value: i64) {
        self.state.insert(key, value);
        self.mix(key.rotate_left(17));
        self.mix(value as u64);
    }

    /// Applies one command, returning the response this shard produces.
    /// Only the keys owned by this replica's group are touched; the
    /// response of a single-key command is meaningful only at the owner
    /// shard (hosts never route one elsewhere).
    pub fn apply_command(&mut self, id: MessageId, dest: GroupSet, cmd: &Command) -> Response {
        let response = match cmd {
            Command::Get { key } => {
                debug_assert!(self.shards.owns(self.group, *key), "get routed off-shard");
                Response::Value(self.value(*key))
            }
            Command::Put { key, value } => {
                debug_assert!(self.shards.owns(self.group, *key), "put routed off-shard");
                let prev = self.value(*key);
                self.write(*key, *value);
                Response::Prev(prev)
            }
            Command::Incr { key, delta } => {
                debug_assert!(self.shards.owns(self.group, *key), "incr routed off-shard");
                let new = self.value(*key).unwrap_or(0) + delta;
                self.write(*key, new);
                Response::NewValue(new)
            }
            Command::MultiPut { entries } => {
                for &(k, v) in entries {
                    if self.shards.owns(self.group, k) {
                        self.write(k, v);
                    }
                }
                Response::Done
            }
            Command::Transfer { from, to, amount } => {
                if self.shards.owns(self.group, *from) {
                    let v = self.value(*from).unwrap_or(0) - amount;
                    self.write(*from, v);
                }
                if self.shards.owns(self.group, *to) {
                    let v = self.value(*to).unwrap_or(0) + amount;
                    self.write(*to, v);
                }
                Response::Done
            }
        };
        self.mix(u64::from(id.origin.0).rotate_left(32) ^ id.seq);
        self.mix(response.digest_word());
        self.log.push(AppliedOp { id, dest, response });
        response
    }
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl StateMachine for KvStateMachine {
    fn apply(&mut self, msg: &AppMessage) {
        match Command::decode(&msg.payload) {
            Ok(cmd) => {
                self.apply_command(msg.id, msg.dest, &cmd);
            }
            Err(_) => self.decode_errors += 1,
        }
    }
}

/// A shareable replica handle: what a harness passes to
/// `wamcast_core::WithApply` while keeping a clone to read logs and digests
/// back out after the run (the only way with the threaded runtime, whose
/// protocol values live on their own threads).
pub type SharedKv = Arc<Mutex<KvStateMachine>>;

/// Builds a [`SharedKv`] replica.
pub fn shared_replica(group: GroupId, shards: ShardMap) -> SharedKv {
    Arc::new(Mutex::new(KvStateMachine::new(group, shards)))
}

/// A deliberately planted apply-path defect, used to prove the history
/// checker rejects bad histories (nothing in the production path constructs
/// one).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApplyBug {
    /// Silently skip every `n`-th apply at the afflicted replica — a lost
    /// update. Caught by the checker's replica-agreement pass (the victim's
    /// log and digest diverge from its shard peers').
    LoseEvery(
        /// Skip period (2 = every second apply).
        u64,
    ),
    /// Hold the first multi-shard command and apply it *after* the next
    /// command — a reordered cross-shard apply. Installed on every replica
    /// of one group, the shard stays internally consistent (agreement
    /// passes!) but its apply order now contradicts the other shards',
    /// which only the cross-shard serializability pass can see.
    ///
    /// Edge: if no further command is ever delivered to the afflicted
    /// replica, the held command is never applied — the defect degrades
    /// into a lost apply, which the checker still convicts, but as an
    /// atomicity violation rather than a serializability cycle. Tests
    /// asserting the cycle specifically must use a workload with at least
    /// one command after the first cross-shard one (the pinned ones do).
    SwapCrossShard,
}

/// A [`StateMachine`] wrapper executing an optional [`ApplyBug`] in front
/// of an inner replica. With `bug == None` it is byte-for-byte transparent,
/// so drivers can use it unconditionally.
#[derive(Debug)]
pub struct BuggyKv {
    inner: SharedKv,
    bug: Option<ApplyBug>,
    applies: u64,
    held: Option<AppMessage>,
    swapped: bool,
}

impl BuggyKv {
    /// Wraps `inner`, executing `bug` (if any) on the apply path.
    pub fn new(inner: SharedKv, bug: Option<ApplyBug>) -> Self {
        BuggyKv {
            inner,
            bug,
            applies: 0,
            held: None,
            swapped: false,
        }
    }
}

impl StateMachine for BuggyKv {
    fn apply(&mut self, msg: &AppMessage) {
        self.applies += 1;
        match self.bug {
            Some(ApplyBug::LoseEvery(n)) if n > 0 && self.applies % n == 0 => {
                // The planted bug: this replica silently loses the update.
            }
            Some(ApplyBug::SwapCrossShard) if !self.swapped => {
                if let Some(held) = self.held.take() {
                    // Second command: apply it first, then the held one —
                    // the pair is now applied in the opposite order.
                    self.inner.apply(msg);
                    self.inner.apply(&held);
                    self.swapped = true;
                } else if msg.dest.len() > 1 {
                    self.held = Some(msg.clone());
                } else {
                    self.inner.apply(msg);
                }
            }
            _ => self.inner.apply(msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wamcast_types::{Payload, ProcessId};

    fn mid(seq: u64) -> MessageId {
        MessageId::new(ProcessId(0), seq)
    }

    fn single_shard() -> (ShardMap, KvStateMachine) {
        let shards = ShardMap::new(1);
        (shards, KvStateMachine::new(GroupId(0), shards))
    }

    #[test]
    fn apply_semantics() {
        let (shards, mut kv) = single_shard();
        let all = GroupSet::first_n(1);
        assert_eq!(
            kv.apply_command(mid(0), all, &Command::Get { key: 1 }),
            Response::Value(None)
        );
        assert_eq!(
            kv.apply_command(mid(1), all, &Command::Put { key: 1, value: 5 }),
            Response::Prev(None)
        );
        assert_eq!(
            kv.apply_command(mid(2), all, &Command::Incr { key: 1, delta: -2 }),
            Response::NewValue(3)
        );
        assert_eq!(
            kv.apply_command(
                mid(3),
                all,
                &Command::Transfer {
                    from: 1,
                    to: 2,
                    amount: 10
                }
            ),
            Response::Done
        );
        assert_eq!(kv.value(1), Some(-7));
        assert_eq!(kv.value(2), Some(10));
        assert_eq!(kv.shard_sum(), 3, "transfer conserves the sum");
        assert_eq!(kv.log().len(), 4);
        assert_eq!(
            kv.response_of(mid(2)).unwrap().response,
            Response::NewValue(3)
        );
        let _ = shards;
    }

    #[test]
    fn replicas_with_same_sequence_agree_and_order_matters() {
        let (shards, mut a) = single_shard();
        let mut b = KvStateMachine::new(GroupId(0), shards);
        let all = GroupSet::first_n(1);
        let cmds = [
            Command::Put { key: 1, value: 2 },
            Command::Incr { key: 1, delta: 3 },
            Command::Put { key: 9, value: 1 },
        ];
        for (i, c) in cmds.iter().enumerate() {
            a.apply_command(mid(i as u64), all, c);
            b.apply_command(mid(i as u64), all, c);
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.log(), b.log());

        // Same multiset of applies in a different order → different digest.
        let mut c = KvStateMachine::new(GroupId(0), shards);
        c.apply_command(mid(1), all, &cmds[1]);
        c.apply_command(mid(0), all, &cmds[0]);
        c.apply_command(mid(2), all, &cmds[2]);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn multiput_only_touches_owned_keys() {
        let shards = ShardMap::new(2);
        let g0 = GroupId(0);
        let g1 = GroupId(1);
        let k0 = shards.key_owned_by(g0, 0);
        let k1 = shards.key_owned_by(g1, 50);
        let mut r0 = KvStateMachine::new(g0, shards);
        let mut r1 = KvStateMachine::new(g1, shards);
        let cmd = Command::MultiPut {
            entries: vec![(k0, 7), (k1, 9)],
        };
        let dest = shards.dest_of(&cmd);
        assert_eq!(dest.len(), 2);
        r0.apply_command(mid(0), dest, &cmd);
        r1.apply_command(mid(0), dest, &cmd);
        assert_eq!((r0.value(k0), r0.value(k1)), (Some(7), None));
        assert_eq!((r1.value(k0), r1.value(k1)), (None, Some(9)));
    }

    #[test]
    fn undecodable_payload_is_counted_not_fatal() {
        let (_, mut kv) = single_shard();
        let junk = AppMessage::new(mid(0), GroupSet::first_n(1), Payload::from(vec![0xFFu8]));
        kv.apply(&junk);
        assert_eq!(kv.decode_errors(), 1);
        assert!(kv.log().is_empty());
    }

    #[test]
    fn buggy_wrapper_is_transparent_without_a_bug() {
        let shards = ShardMap::new(1);
        let shared = shared_replica(GroupId(0), shards);
        let mut tap = BuggyKv::new(Arc::clone(&shared), None);
        let mut reference = KvStateMachine::new(GroupId(0), shards);
        for seq in 0..10u64 {
            let cmd = Command::Incr {
                key: seq % 3,
                delta: 1,
            };
            let m = AppMessage::new(mid(seq), GroupSet::first_n(1), cmd.encode());
            tap.apply(&m);
            reference.apply(&m);
        }
        assert_eq!(shared.lock().unwrap().digest(), reference.digest());
    }

    #[test]
    fn lose_every_diverges_the_victim() {
        let shards = ShardMap::new(1);
        let shared = shared_replica(GroupId(0), shards);
        let mut tap = BuggyKv::new(Arc::clone(&shared), Some(ApplyBug::LoseEvery(2)));
        let mut reference = KvStateMachine::new(GroupId(0), shards);
        for seq in 0..4u64 {
            let cmd = Command::Put {
                key: 1,
                value: seq as i64,
            };
            let m = AppMessage::new(mid(seq), GroupSet::first_n(1), cmd.encode());
            tap.apply(&m);
            reference.apply(&m);
        }
        assert_eq!(shared.lock().unwrap().log().len(), 2, "half were lost");
        assert_ne!(shared.lock().unwrap().digest(), reference.digest());
    }

    #[test]
    fn swap_cross_shard_swaps_exactly_one_adjacent_pair() {
        let shards = ShardMap::new(2);
        let g0 = GroupId(0);
        let shared = shared_replica(g0, shards);
        let mut tap = BuggyKv::new(Arc::clone(&shared), Some(ApplyBug::SwapCrossShard));
        let k0 = shards.key_owned_by(g0, 0);
        let k1 = shards.key_owned_by(GroupId(1), 50);
        let cross = Command::Transfer {
            from: k0,
            to: k1,
            amount: 1,
        };
        let dest = shards.dest_of(&cross);
        for seq in 0..3u64 {
            tap.apply(&AppMessage::new(mid(seq), dest, cross.encode()));
        }
        let order: Vec<u64> = shared
            .lock()
            .unwrap()
            .log()
            .iter()
            .map(|a| a.id.seq)
            .collect();
        assert_eq!(order, vec![1, 0, 2], "first pair swapped, rest in order");
    }
}
