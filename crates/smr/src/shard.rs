//! Key→shard placement.

use crate::Command;
use wamcast_types::{GroupId, GroupSet};

/// A key of the partitioned store. Keys are opaque 64-bit identifiers; the
/// shard map hashes them, so dense client key spaces still spread evenly.
pub type Key = u64;

/// The static key→shard assignment: shard `i` is owned by topology group
/// `gᵢ`, one shard per group.
///
/// Placement is `fmix64(key) mod shards` — a full-avalanche hash, so any
/// client key distribution (including the sequential and power-law ones the
/// driver generates) balances across shards, while every replica computes
/// the same owner with no coordination. The map is deliberately immutable:
/// the paper's model has no reconfiguration, and a static map is what makes
/// "the groups a command touches" a pure function of the command — the
/// property genuine atomic multicast needs to route it.
///
/// # Example
///
/// ```
/// use wamcast_smr::{Command, ShardMap};
///
/// let shards = ShardMap::new(3);
/// let cmd = Command::Put { key: 7, value: 1 };
/// let dest = shards.dest_of(&cmd);
/// assert_eq!(dest.len(), 1);
/// assert!(dest.contains(shards.owner(7)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    shards: u16,
}

impl ShardMap {
    /// A map over `shards` shards (= topology groups).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds [`GroupSet::MAX_GROUPS`].
    pub fn new(shards: usize) -> Self {
        assert!(
            shards > 0 && shards <= GroupSet::MAX_GROUPS,
            "shard count {shards} out of range"
        );
        ShardMap {
            shards: shards as u16,
        }
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards as usize
    }

    /// The group owning `key`.
    #[inline]
    pub fn owner(&self, key: Key) -> GroupId {
        GroupId((fmix64(key) % u64::from(self.shards)) as u16)
    }

    /// Whether group `g` owns `key`.
    #[inline]
    pub fn owns(&self, g: GroupId, key: Key) -> bool {
        self.owner(key) == g
    }

    /// The destination group set of a command: exactly the owners of the
    /// keys it touches. This is the genuine-multicast routing rule — a
    /// command involves no group beyond the shards it reads or writes.
    pub fn dest_of(&self, cmd: &Command) -> GroupSet {
        let mut dest = GroupSet::new();
        cmd.for_each_key(|k| {
            dest.insert(self.owner(k));
        });
        debug_assert!(!dest.is_empty(), "commands touch at least one key");
        dest
    }

    /// A key owned by `g`, derived deterministically from `hint` (the
    /// driver uses this to construct cross-shard commands with prescribed
    /// owner pairs). Probes `hint, hint+1, …` until one lands on `g`.
    pub fn key_owned_by(&self, g: GroupId, hint: Key) -> Key {
        assert!(g.index() < self.num_shards(), "no shard for group {g}");
        let mut k = hint;
        loop {
            if self.owner(k) == g {
                return k;
            }
            k = k.wrapping_add(1);
        }
    }
}

/// The 64-bit finalizer of MurmurHash3/SplitMix64: full avalanche, cheap,
/// and dependency-free.
#[inline]
fn fmix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_in_range() {
        let m = ShardMap::new(3);
        for k in 0..1000u64 {
            let g = m.owner(k);
            assert_eq!(g, m.owner(k));
            assert!(g.index() < 3);
            assert!(m.owns(g, k));
        }
    }

    #[test]
    fn placement_balances_sequential_keys() {
        let m = ShardMap::new(4);
        let mut counts = [0usize; 4];
        for k in 0..4000u64 {
            counts[m.owner(k).index()] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skewed placement: {counts:?}");
        }
    }

    #[test]
    fn dest_covers_exactly_touched_shards() {
        let m = ShardMap::new(4);
        let a = m.key_owned_by(GroupId(0), 0);
        let b = m.key_owned_by(GroupId(2), 100);
        let t = Command::Transfer {
            from: a,
            to: b,
            amount: 5,
        };
        let dest = m.dest_of(&t);
        assert_eq!(dest.len(), 2);
        assert!(dest.contains(GroupId(0)) && dest.contains(GroupId(2)));
        // Same-shard transfer collapses to a single-group destination.
        let b2 = m.key_owned_by(GroupId(0), 200);
        let t2 = Command::Transfer {
            from: a,
            to: b2,
            amount: 5,
        };
        assert_eq!(m.dest_of(&t2).len(), 1);
    }

    #[test]
    fn key_owned_by_lands_on_the_group() {
        let m = ShardMap::new(5);
        for g in 0..5u16 {
            for hint in [0u64, 17, 1 << 40] {
                assert_eq!(m.owner(m.key_owned_by(GroupId(g), hint)), GroupId(g));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_shards_rejected() {
        let _ = ShardMap::new(0);
    }
}
