//! Wire codecs for the SMR control plane: what a TCP client reads back
//! from peer processes — per-op [`Response`]s and end-of-run
//! [`ReplicaLog`] snapshots for the history checker. [`crate::Command`]
//! needs no `Wire` impl: commands travel *inside* `Payload` bytes using
//! their own fixed-width codec (`Command::encode`/`decode`), which is the
//! representation replicas apply. Tag values here are part of the wire
//! format; renumbering is a protocol break.

use crate::history::ReplicaLog;
use crate::kv::AppliedOp;
use crate::Response;
use wamcast_types::wire::{Wire, WireError, WireReader, WireWriter};
use wamcast_types::{GroupId, GroupSet, MessageId};

impl Wire for Response {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Response::Value(v) => {
                w.u8(0);
                v.encode(w);
            }
            Response::Prev(v) => {
                w.u8(1);
                v.encode(w);
            }
            Response::NewValue(v) => {
                w.u8(2);
                v.encode(w);
            }
            Response::Done => w.u8(3),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Response::Value(Option::<i64>::decode(r)?)),
            1 => Ok(Response::Prev(Option::<i64>::decode(r)?)),
            2 => Ok(Response::NewValue(i64::decode(r)?)),
            3 => Ok(Response::Done),
            tag => Err(WireError::UnknownTag {
                what: "Response",
                tag,
            }),
        }
    }
}

impl Wire for AppliedOp {
    fn encode(&self, w: &mut WireWriter) {
        self.id.encode(w);
        self.dest.encode(w);
        self.response.encode(w);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let id = MessageId::decode(r)?;
        let dest = GroupSet::decode(r)?;
        let response = Response::decode(r)?;
        Ok(AppliedOp { id, dest, response })
    }
}

impl Wire for ReplicaLog {
    fn encode(&self, w: &mut WireWriter) {
        self.process.encode(w);
        self.group.encode(w);
        self.applied.encode(w);
        w.u64(self.digest);
        w.u64(self.decode_errors);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let process = wamcast_types::ProcessId::decode(r)?;
        let group = GroupId::decode(r)?;
        let applied = Vec::<AppliedOp>::decode(r)?;
        let digest = r.u64()?;
        let decode_errors = r.u64()?;
        Ok(ReplicaLog {
            process,
            group,
            applied,
            digest,
            decode_errors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wamcast_types::ProcessId;

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::Value(None),
            Response::Value(Some(-3)),
            Response::Prev(Some(i64::MIN)),
            Response::NewValue(i64::MAX),
            Response::Done,
        ] {
            assert_eq!(Response::from_wire(&resp.to_wire()).unwrap(), resp);
        }
        assert!(Response::from_wire(&[9]).is_err());
    }

    #[test]
    fn replica_log_roundtrips() {
        let log = ReplicaLog {
            process: ProcessId(4),
            group: GroupId(2),
            applied: vec![AppliedOp {
                id: MessageId::new(ProcessId(0), 3),
                dest: GroupSet::first_n(2),
                response: Response::Done,
            }],
            digest: 0xfeed_beef,
            decode_errors: 0,
        };
        assert_eq!(ReplicaLog::from_wire(&log.to_wire()).unwrap(), log);
    }
}
