//! The KV service on the threaded `wamcast-net` runtime: real OS threads,
//! real timers, batching on. The same sans-io protocol values and the same
//! state machines as the simulator runs — this test is the proof that the
//! delivery→apply hookup and the history checker are runtime-agnostic.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use wamcast_core::{GenuineMulticast, MulticastConfig, WithApply};
use wamcast_net::Cluster;
use wamcast_smr::{
    history, responder_shard, shared_replica, Command, History, OpRecord, ReplicaLog, ShardMap,
    SharedKv,
};
use wamcast_types::{BatchConfig, GroupId, SimTime, Topology};

/// Two shards × two replicas on threads, batching enabled, a closed-loop
/// command mix covering every variant including cross-shard transfers and
/// multi-puts. The run must converge and the recorded history must pass
/// the full checker (agreement, atomicity, linearizability,
/// serializability) — with the batch flush timer running on real time.
#[test]
fn threaded_cluster_with_batching_passes_the_history_checker() {
    let shards = ShardMap::new(2);
    let topo = Topology::symmetric(2, 2);
    let handles: Arc<Mutex<Vec<SharedKv>>> = Arc::new(Mutex::new(Vec::new()));
    let mcfg = MulticastConfig::default()
        .with_batch(BatchConfig::new(4).with_max_delay(Duration::from_millis(5)))
        .with_retry(Duration::from_millis(200));
    let started = Instant::now();
    let cluster = {
        let handles = Arc::clone(&handles);
        Cluster::spawn(topo, move |p, t| {
            let kv = shared_replica(t.group_of(p), shards);
            handles.lock().unwrap().push(Arc::clone(&kv));
            WithApply::new(GenuineMulticast::new(p, t, mcfg), kv)
        })
    };
    let handles = handles.lock().unwrap().clone();
    let now = |started: Instant| SimTime::from_nanos(started.elapsed().as_nanos() as u64);

    let k0 = shards.key_owned_by(GroupId(0), 1);
    let k1 = shards.key_owned_by(GroupId(1), 40);
    let script = [
        Command::Put { key: k0, value: 10 },
        Command::Put { key: k1, value: 20 },
        Command::Transfer {
            from: k0,
            to: k1,
            amount: 4,
        },
        Command::Incr { key: k0, delta: 1 },
        Command::MultiPut {
            entries: vec![(k0, 100), (k1, 200)],
        },
        Command::Get { key: k0 },
        Command::Transfer {
            from: k1,
            to: k0,
            amount: 50,
        },
        Command::Get { key: k1 },
    ];

    let mut ops: Vec<OpRecord> = Vec::new();
    for (i, cmd) in script.iter().enumerate() {
        let dest = shards.dest_of(cmd);
        // Rotate the caster across all four processes.
        let caster = wamcast_types::ProcessId((i % 4) as u32);
        let invoked_at = now(started);
        let id = cluster.cast(caster, dest, cmd.encode());
        cluster
            .await_delivery_everywhere(id, Duration::from_secs(20))
            .expect("closed-loop op must deliver");
        let responder = responder_shard(&shards, cmd, dest);
        let rp = cluster.topology().members(responder)[0];
        let response = handles[rp.index()]
            .lock()
            .unwrap()
            .response_of(id)
            .map(|a| a.response);
        assert!(response.is_some(), "responder must have applied op {i}");
        ops.push(OpRecord {
            id,
            cmd: cmd.clone(),
            dest,
            client: 0,
            invoked_at,
            responded_at: Some(now(started)),
            response,
        });
    }

    let replicas: Vec<ReplicaLog> = cluster
        .topology()
        .processes()
        .map(|p| ReplicaLog::capture(p, &handles[p.index()].lock().unwrap()))
        .collect();
    cluster.shutdown();

    // Semantic spot checks before the full verdict.
    let g0 = handles[0].lock().unwrap();
    assert_eq!(
        g0.value(k0),
        Some(150),
        "100 (multiput) + 50 (transfer back)"
    );
    drop(g0);
    let hist = History {
        shards,
        ops,
        replicas,
    };
    assert_eq!(hist.committed(), script.len());
    let report = history::check(&hist);
    report.assert_ok();
    assert_eq!(report.shards_checked, 2);
}
